// baco_worker: a serve-protocol evaluation worker.
//
// By default it speaks JSONL frames on its standard streams, so a
// coordinator attaches it through pipes directly (baco_serve
// --worker-cmd), or across hosts through ssh/socat. Two socket modes
// remove the process-spawning relationship so fleets scale across
// machines:
//
//   --connect unix:PATH|tcp:HOST:PORT   dial a `baco_serve --listen`
//       server (or anything accepting worker hellos) and join its
//       evaluation fleet;
//   --listen unix:PATH|tcp:HOST:PORT    run as a worker daemon: serve
//       one coordinator connection at a time (this is the endpoint
//       ExecutionPolicy::Remote addresses name).
//
// Evaluates registry benchmarks under the (seed, index)-derived noise
// streams, so any worker placement yields identical tuning histories.
//
// --heartbeat-ms N (default 1000, 0 disables) advertises a beacon
// interval in the hello frame and sends a heartbeat frame whenever that
// long passes without other traffic, so the coordinator's health
// registry spots a wedged worker without waiting on a blocked read.
//
// Status lines go through the structured event log (JSONL on stderr by
// default); --log-file redirects it, --log-level (debug|info|warn|error)
// filters it.
//
// Usage: baco_worker [--capacity N] [--heartbeat-ms N]
//                    [--connect ADDR | --listen ADDR [--once]]
//                    [--log-file PATH] [--log-level LEVEL]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/log.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    baco::serve::WorkerOptions opt;
    opt.heartbeat_ms = 1000;
    std::string connect_spec;
    std::string listen_spec;
    std::string log_file;
    std::string log_level = "info";
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
            opt.capacity = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 &&
                   i + 1 < argc) {
            opt.heartbeat_ms = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--connect") == 0 &&
                   i + 1 < argc) {
            connect_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--listen") == 0 &&
                   i + 1 < argc) {
            listen_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--log-file") == 0 &&
                   i + 1 < argc) {
            log_file = argv[++i];
        } else if (std::strcmp(argv[i], "--log-level") == 0 &&
                   i + 1 < argc) {
            log_level = argv[++i];
        } else if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--capacity N] [--heartbeat-ms N] "
                         "[--connect unix:PATH|tcp:HOST:PORT | --listen "
                         "unix:PATH|tcp:HOST:PORT [--once]] "
                         "[--log-file PATH] [--log-level LEVEL]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!connect_spec.empty() && !listen_spec.empty()) {
        std::fprintf(stderr,
                     "baco_worker: --connect and --listen are mutually "
                     "exclusive\n");
        return 2;
    }
    baco::obs::LogLevel level = baco::obs::LogLevel::kInfo;
    if (!baco::obs::parse_log_level(log_level, level)) {
        std::fprintf(stderr, "baco_worker: unknown log level '%s'\n",
                     log_level.c_str());
        return 2;
    }
    baco::obs::EventLog::global().configure(level, log_file);

    std::uint64_t evaluated = 0;
    if (!connect_spec.empty()) {
        std::string error;
        std::unique_ptr<baco::serve::Transport> transport =
            baco::serve::connect_socket(connect_spec, &error);
        if (!transport) {
            baco::obs::log_error("worker", "connect_failed",
                                 baco::obs::LogFields()
                                     .str("address", connect_spec)
                                     .str("error", error));
            return 1;
        }
        baco::obs::log_info("worker", "connected",
                            baco::obs::LogFields()
                                .str("address", connect_spec)
                                .num("capacity", opt.capacity)
                                .num("heartbeat_ms", opt.heartbeat_ms));
        evaluated = baco::serve::run_worker_loop(*transport, opt);
    } else if (!listen_spec.empty()) {
        std::string error;
        std::optional<baco::serve::SocketAddress> addr =
            baco::serve::parse_socket_address(listen_spec, &error);
        baco::serve::Listener listener;
        if (!addr || !listener.open(*addr, &error)) {
            baco::obs::log_error("worker", "listen_failed",
                                 baco::obs::LogFields()
                                     .str("address", listen_spec)
                                     .str("error", error));
            return 1;
        }
        baco::obs::log_info(
            "worker", "listening",
            baco::obs::LogFields()
                .str("address", listener.address().str())
                .num("capacity", opt.capacity)
                .num("heartbeat_ms", opt.heartbeat_ms));
        // One coordinator at a time: a worker daemon outlives its
        // coordinators (each disconnect just frees it for the next),
        // unless --once asked for a single engagement.
        do {
            std::unique_ptr<baco::serve::Transport> transport =
                listener.accept();
            if (!transport)
                break;
            evaluated += baco::serve::run_worker_loop(*transport, opt);
        } while (!once);
    } else {
        baco::serve::PipeTransport stdio(0, 1, /*owns_fds=*/false);
        evaluated = baco::serve::run_worker_loop(stdio, opt);
    }
    baco::obs::log_info("worker", "exit",
                        baco::obs::LogFields().num("evals", evaluated));
    return 0;
}
