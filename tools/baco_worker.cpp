// baco_worker: a serve-protocol evaluation worker over stdin/stdout.
//
// Speaks JSONL frames on its standard streams, so a coordinator attaches
// it through pipes directly (baco_serve --worker-cmd), or across hosts
// through ssh/socat. Evaluates registry benchmarks under the
// (seed, index)-derived noise streams, so any worker placement yields
// identical tuning histories.
//
// Usage: baco_worker [--capacity N]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/transport.hpp"
#include "serve/worker.hpp"

int
main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    baco::serve::WorkerOptions opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
            opt.capacity = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--capacity N]\n", argv[0]);
            return 2;
        }
    }

    baco::serve::PipeTransport stdio(0, 1, /*owns_fds=*/false);
    std::uint64_t evaluated = baco::serve::run_worker_loop(stdio, opt);
    std::fprintf(stderr, "baco_worker: %llu evaluations served\n",
                 static_cast<unsigned long long>(evaluated));
    return 0;
}
