// Chain-of-Trees: the paper's Fig. 4 example, sampling bias, membership.

#include <gtest/gtest.h>

#include <map>

#include "core/chain_of_trees.hpp"

namespace baco {
namespace {

/** The exact search space of the paper's Fig. 4. */
SearchSpace
fig4_space()
{
    SearchSpace s;
    s.add_ordinal("p1", {2, 4});
    s.add_ordinal("p2", {2, 4});
    s.add_ordinal("p3", {1, 4});
    s.add_ordinal("p4", {1, 2, 4});
    s.add_ordinal("p5", {2, 4, 8});
    s.add_constraint("p1 >= p2");
    s.add_constraint("p4 >= p3");
    s.add_constraint("p5 >= 2*p4");
    return s;
}

TEST(ChainOfTrees, Fig4GroupsAndLeafCounts)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);

    // Two trees: {p1,p2} and {p3,p4,p5}; no free parameters.
    ASSERT_EQ(cot.num_trees(), 2u);
    EXPECT_TRUE(cot.free_params().empty());
    EXPECT_EQ(cot.tree_params()[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(cot.tree_params()[1], (std::vector<std::size_t>{2, 3, 4}));

    // Left tree (Fig. 4): paths (2,2), (4,2), (4,4) -> 3 leaves.
    EXPECT_EQ(cot.tree_leaves(0), 3u);
    // Right tree: p3=1: p4 in {1,2,4} with p5>=2p4 -> (1,1,{2,4,8}),
    // (1,2,{4,8}), (1,4,8); p3=4: (4,4,8) -> 3+2+1+1 = 7 leaves.
    EXPECT_EQ(cot.tree_leaves(1), 7u);
    EXPECT_DOUBLE_EQ(cot.num_feasible(), 21.0);
}

TEST(ChainOfTrees, Fig4ExamplePathIsMember)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);
    // The paper's example combination: (2,2,4,4,8).
    Configuration c{std::int64_t{2}, std::int64_t{2}, std::int64_t{4},
                    std::int64_t{4}, std::int64_t{8}};
    EXPECT_TRUE(cot.contains(c));
    EXPECT_TRUE(s.satisfies(c));
    // (2,4,...) violates p1 >= p2.
    Configuration bad = c;
    bad[1] = std::int64_t{4};
    EXPECT_FALSE(cot.contains(bad));
    EXPECT_FALSE(s.satisfies(bad));
}

TEST(ChainOfTrees, MembershipAgreesWithConstraints)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(1);
    for (int i = 0; i < 500; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        EXPECT_EQ(cot.contains(c), s.satisfies(c));
    }
}

TEST(ChainOfTrees, SamplesAreAlwaysFeasible)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(2);
    for (int i = 0; i < 300; ++i) {
        EXPECT_TRUE(s.satisfies(cot.sample(rng, true)));
        EXPECT_TRUE(s.satisfies(cot.sample(rng, false)));
    }
}

TEST(ChainOfTrees, UniformLeafSamplingIsUnbiased)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(3);
    // Count samples of the right tree's p3 coordinate. Under leaf-uniform
    // sampling, p3=1 owns 6 of 7 leaves; under the biased walk it gets 1/2.
    const int n = 20000;
    int p3_is_1_uniform = 0, p3_is_1_biased = 0;
    for (int i = 0; i < n; ++i) {
        if (as_int(cot.sample(rng, true)[2]) == 1)
            ++p3_is_1_uniform;
        if (as_int(cot.sample(rng, false)[2]) == 1)
            ++p3_is_1_biased;
    }
    EXPECT_NEAR(p3_is_1_uniform / double(n), 6.0 / 7.0, 0.02);
    EXPECT_NEAR(p3_is_1_biased / double(n), 0.5, 0.02);
}

TEST(ChainOfTrees, FreeParametersAreSampledUniformly)
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2});
    s.add_ordinal("b", {1, 2, 4});
    s.add_categorical("free", {"x", "y", "z"});
    s.add_constraint("b >= a");
    ChainOfTrees cot = ChainOfTrees::build(s);
    ASSERT_EQ(cot.num_trees(), 1u);
    ASSERT_EQ(cot.free_params().size(), 1u);
    EXPECT_EQ(cot.free_params()[0], 2u);
    EXPECT_EQ(cot.tree_of(2), ChainOfTrees::kNoTree);
    EXPECT_EQ(cot.tree_of(0), 0u);
    // feasible: pairs (a,b) with b>=a: (1,1),(1,2),(1,4),(2,2),(2,4) = 5;
    // times 3 free categories.
    EXPECT_DOUBLE_EQ(cot.num_feasible(), 15.0);

    RngEngine rng(4);
    std::map<std::int64_t, int> counts;
    for (int i = 0; i < 3000; ++i)
        counts[as_int(cot.sample(rng, true)[2])]++;
    for (auto& [k, v] : counts)
        EXPECT_NEAR(v / 3000.0, 1.0 / 3.0, 0.05);
}

TEST(ChainOfTrees, ResampleTreeKeepsOtherCoordinates)
{
    SearchSpace s = fig4_space();
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(5);
    Configuration c = cot.sample(rng, true);
    Configuration before = c;
    cot.resample_tree(1, c, rng, true);
    // Tree 0 coordinates (p1, p2) unchanged; result still feasible.
    EXPECT_TRUE(param_value_equal(c[0], before[0]));
    EXPECT_TRUE(param_value_equal(c[1], before[1]));
    EXPECT_TRUE(s.satisfies(c));
}

TEST(ChainOfTrees, PermutationConstraintTree)
{
    SearchSpace s;
    s.add_permutation("perm", 4);
    s.add_constraint(
        [](const Configuration& c) {
            const Permutation& p = as_permutation(c[0]);
            return p[0] < p[1];
        },
        {"perm"}, "pos0 < pos1");
    ChainOfTrees cot = ChainOfTrees::build(s);
    EXPECT_DOUBLE_EQ(cot.num_feasible(), 12.0);  // half of 4!
    RngEngine rng(6);
    for (int i = 0; i < 100; ++i) {
        Permutation p = as_permutation(cot.sample(rng, true)[0]);
        EXPECT_LT(p[0], p[1]);
    }
}

TEST(ChainOfTrees, ThrowsOnInfeasibleGroup)
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2});
    s.add_constraint("a > 5");
    EXPECT_THROW(ChainOfTrees::build(s), std::runtime_error);
}

TEST(ChainOfTrees, ThrowsOnContinuousConstrainedParam)
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_constraint("x <= 0.5");
    EXPECT_THROW(ChainOfTrees::build(s), std::runtime_error);
}

TEST(ChainOfTrees, NonLinearCrossParameterConstraint)
{
    SearchSpace s;
    s.add_ordinal("ti", {2, 4, 8, 16});
    s.add_ordinal("tj", {2, 4, 8, 16});
    s.add_constraint("ti * tj <= 32");
    ChainOfTrees cot = ChainOfTrees::build(s);
    // Pairs with product <= 32: ti=2 has 4, ti=4 has 3, ti=8 has 2,
    // ti=16 has 1.
    EXPECT_DOUBLE_EQ(cot.num_feasible(), 10.0);
}

}  // namespace
}  // namespace baco
