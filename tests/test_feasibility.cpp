// The hidden-constraint feasibility model.

#include <gtest/gtest.h>

#include "core/feasibility_model.hpp"

namespace baco {
namespace {

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {1, 2, 4, 8, 16, 32, 64, 128}, true);
    s.add_categorical("mode", {"a", "b"});
    return s;
}

Observation
obs(std::int64_t tile, std::int64_t mode, bool feasible)
{
    Observation o;
    o.config = {ParamValue{tile}, ParamValue{mode}};
    o.value = 1.0;
    o.feasible = feasible;
    return o;
}

TEST(FeasibilityModel, InactiveUntilBothClassesSeen)
{
    SearchSpace s = make_space();
    FeasibilityModel m(s);
    RngEngine rng(1);
    EXPECT_FALSE(m.active());
    EXPECT_DOUBLE_EQ(m.probability({ParamValue{std::int64_t{4}},
                                    ParamValue{std::int64_t{0}}}),
                     1.0);

    std::vector<Observation> all_ok{obs(1, 0, true), obs(2, 0, true),
                                    obs(4, 1, true)};
    m.fit(all_ok, rng);
    EXPECT_FALSE(m.active());

    std::vector<Observation> all_bad{obs(1, 0, false), obs(2, 0, false)};
    m.fit(all_bad, rng);
    EXPECT_FALSE(m.active());
}

TEST(FeasibilityModel, LearnsSeparableHiddenConstraint)
{
    // Hidden rule: tile > 16 crashes.
    SearchSpace s = make_space();
    FeasibilityModel m(s);
    RngEngine rng(2);
    std::vector<Observation> history;
    for (std::int64_t tile : {1, 2, 4, 8, 16, 32, 64, 128}) {
        for (std::int64_t mode : {0, 1}) {
            history.push_back(obs(tile, mode, tile <= 16));
            history.push_back(obs(tile, mode, tile <= 16));
        }
    }
    m.fit(history, rng);
    ASSERT_TRUE(m.active());
    EXPECT_GT(m.probability({ParamValue{std::int64_t{4}},
                             ParamValue{std::int64_t{0}}}),
              0.8);
    // Bootstrapped leaf probabilities smooth the estimate; 0.35 still
    // clearly separates the classes.
    EXPECT_LT(m.probability({ParamValue{std::int64_t{128}},
                             ParamValue{std::int64_t{1}}}),
              0.35);
}

TEST(FeasibilityModel, LearnsCategoricalHiddenConstraint)
{
    // Hidden rule: mode "b" crashes.
    SearchSpace s = make_space();
    FeasibilityModel m(s);
    RngEngine rng(3);
    std::vector<Observation> history;
    for (std::int64_t tile : {1, 4, 16, 64}) {
        history.push_back(obs(tile, 0, true));
        history.push_back(obs(tile, 1, false));
    }
    m.fit(history, rng);
    ASSERT_TRUE(m.active());
    EXPECT_GT(m.probability({ParamValue{std::int64_t{8}},
                             ParamValue{std::int64_t{0}}}),
              0.7);
    EXPECT_LT(m.probability({ParamValue{std::int64_t{8}},
                             ParamValue{std::int64_t{1}}}),
              0.3);
}

TEST(FeasibilityModel, ProbabilitiesAreBounded)
{
    SearchSpace s = make_space();
    FeasibilityModel m(s);
    RngEngine rng(4);
    std::vector<Observation> history{obs(1, 0, true), obs(128, 1, false),
                                     obs(4, 0, true), obs(64, 1, false)};
    m.fit(history, rng);
    RngEngine sample_rng(5);
    for (int i = 0; i < 50; ++i) {
        double p = m.probability(s.sample_unconstrained(sample_rng));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(FeasibilityModel, RefitReplacesState)
{
    SearchSpace s = make_space();
    FeasibilityModel m(s);
    RngEngine rng(6);
    std::vector<Observation> h1{obs(1, 0, true), obs(128, 0, false),
                                obs(2, 0, true), obs(64, 0, false)};
    m.fit(h1, rng);
    ASSERT_TRUE(m.active());
    // New history where everything is feasible deactivates the model.
    std::vector<Observation> h2{obs(1, 0, true), obs(2, 0, true)};
    m.fit(h2, rng);
    EXPECT_FALSE(m.active());
    EXPECT_DOUBLE_EQ(m.probability({ParamValue{std::int64_t{128}},
                                    ParamValue{std::int64_t{0}}}),
                     1.0);
}

}  // namespace
}  // namespace baco
