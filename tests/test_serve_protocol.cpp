// The serve wire protocol: encode/decode round-trips for every frame
// type, malformed-frame rejection, and the loopback/pipe transports.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace baco::serve {
namespace {

Configuration
mixed_config()
{
    return {std::int64_t{8}, 0.375, Permutation{2, 0, 1}};
}

/** Round-trip m through encode/decode (optionally through a transport). */
Message
roundtrip(const Message& m, Transport* via = nullptr)
{
    std::string frame = encode(m);
    if (via) {
        EXPECT_TRUE(via->send(frame));
        frame.clear();
        EXPECT_EQ(via->recv(frame, 2000), RecvStatus::kOk);
    }
    Message out;
    std::string err;
    EXPECT_TRUE(decode(frame, out, &err)) << frame << " : " << err;
    return out;
}

TEST(ServeProtocol, HelloWelcomeRoundtrip)
{
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "worker";
    hello.capacity = 3;
    Message out = roundtrip(hello);
    EXPECT_EQ(out.type, MsgType::kHello);
    EXPECT_EQ(out.version, kProtocolVersion);
    EXPECT_EQ(out.text, "worker");
    EXPECT_EQ(out.capacity, 3);

    Message welcome;
    welcome.type = MsgType::kWelcome;
    out = roundtrip(welcome);
    EXPECT_EQ(out.type, MsgType::kWelcome);
    EXPECT_EQ(out.version, kProtocolVersion);
}

TEST(ServeProtocol, OpenSessionRoundtrip)
{
    Message m;
    m.type = MsgType::kOpenSession;
    m.id = 42;
    m.session = "exp-1.run_2";
    m.benchmark = "SpMM/scircuit";
    m.method = "BaCO";
    m.budget = 60;
    m.doe = 10;
    m.seed = 0xdeadbeefULL;
    m.resume = true;
    Message out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kOpenSession);
    EXPECT_EQ(out.id, 42u);
    EXPECT_EQ(out.session, "exp-1.run_2");
    EXPECT_EQ(out.benchmark, "SpMM/scircuit");
    EXPECT_EQ(out.method, "BaCO");
    EXPECT_EQ(out.budget, 60);
    EXPECT_EQ(out.doe, 10);
    EXPECT_EQ(out.seed, 0xdeadbeefULL);
    EXPECT_TRUE(out.resume);
}

TEST(ServeProtocol, OpenedOkDoneErrorRoundtrip)
{
    Message opened;
    opened.type = MsgType::kOpened;
    opened.id = 7;
    opened.session = "s";
    opened.evals = 12;
    opened.budget = 30;
    opened.resumed = true;
    Message out = roundtrip(opened);
    EXPECT_EQ(out.type, MsgType::kOpened);
    EXPECT_EQ(out.evals, 12u);
    EXPECT_EQ(out.budget, 30);
    EXPECT_TRUE(out.resumed);

    Message ok;
    ok.type = MsgType::kOk;
    ok.id = 8;
    ok.evals = 13;
    ok.best = 1.0625;
    ok.text = "/tmp/s.ckpt.jsonl";
    out = roundtrip(ok);
    EXPECT_EQ(out.type, MsgType::kOk);
    EXPECT_DOUBLE_EQ(out.best, 1.0625);
    EXPECT_EQ(out.text, "/tmp/s.ckpt.jsonl");

    Message done;
    done.type = MsgType::kDone;
    done.id = 9;
    done.evals = 60;
    done.best = 0.5;
    out = roundtrip(done);
    EXPECT_EQ(out.type, MsgType::kDone);
    EXPECT_EQ(out.evals, 60u);
    EXPECT_DOUBLE_EQ(out.best, 0.5);

    out = roundtrip(make_error(11, "something broke"));
    EXPECT_EQ(out.type, MsgType::kError);
    EXPECT_EQ(out.id, 11u);
    EXPECT_EQ(out.text, "something broke");
}

TEST(ServeProtocol, SuggestConfigsRoundtrip)
{
    Message ask;
    ask.type = MsgType::kSuggest;
    ask.id = 3;
    ask.session = "s";
    ask.n = 4;
    Message out = roundtrip(ask);
    EXPECT_EQ(out.type, MsgType::kSuggest);
    EXPECT_EQ(out.n, 4);

    Message configs;
    configs.type = MsgType::kConfigs;
    configs.id = 3;
    configs.index = 16;
    configs.configs = {mixed_config(), {std::int64_t{1}}, {}};
    out = roundtrip(configs);
    EXPECT_EQ(out.type, MsgType::kConfigs);
    EXPECT_EQ(out.index, 16u);
    ASSERT_EQ(out.configs.size(), 3u);
    EXPECT_TRUE(configs_equal(out.configs[0], mixed_config()));
    EXPECT_TRUE(configs_equal(out.configs[1], {std::int64_t{1}}));
    EXPECT_TRUE(out.configs[2].empty());

    // An empty batch (budget exhausted) survives the round trip too.
    configs.configs.clear();
    out = roundtrip(configs);
    EXPECT_TRUE(out.configs.empty());
}

TEST(ServeProtocol, ObserveRoundtripPreservesExactValues)
{
    Message m;
    m.type = MsgType::kObserve;
    m.id = 5;
    m.session = "s";
    m.eval_seconds = 0.125;
    ObservedResult a;
    a.config = mixed_config();
    a.value = 1.0 / 3.0;  // requires %.17g exactness
    a.feasible = true;
    ObservedResult b;
    b.config = {std::int64_t{2}};
    b.value = 0.0;
    b.feasible = false;
    m.results = {a, b};

    Message out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kObserve);
    EXPECT_DOUBLE_EQ(out.eval_seconds, 0.125);
    ASSERT_EQ(out.results.size(), 2u);
    EXPECT_TRUE(configs_equal(out.results[0].config, a.config));
    EXPECT_EQ(out.results[0].value, a.value);  // bit-exact
    EXPECT_TRUE(out.results[0].feasible);
    EXPECT_FALSE(out.results[1].feasible);
}

TEST(ServeProtocol, EvaluateResultRoundtrip)
{
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = 77;
    m.benchmark = "SDDMM/email-Enron";
    m.seed = 123456789;
    m.index = 31;
    m.config = mixed_config();
    Message out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kEvaluate);
    EXPECT_EQ(out.benchmark, "SDDMM/email-Enron");
    EXPECT_EQ(out.seed, 123456789u);
    EXPECT_EQ(out.index, 31u);
    EXPECT_TRUE(configs_equal(out.config, mixed_config()));

    Message r;
    r.type = MsgType::kResult;
    r.id = 77;
    r.value = 2.5e-3;
    r.feasible = false;
    r.eval_seconds = 0.001;
    out = roundtrip(r);
    EXPECT_EQ(out.type, MsgType::kResult);
    EXPECT_EQ(out.value, 2.5e-3);
    EXPECT_FALSE(out.feasible);
}

TEST(ServeProtocol, RemainingTypesRoundtrip)
{
    for (MsgType t : {MsgType::kCheckpoint, MsgType::kClose}) {
        Message m;
        m.type = t;
        m.id = 4;
        m.session = "sess";
        Message out = roundtrip(m);
        EXPECT_EQ(out.type, t);
        EXPECT_EQ(out.session, "sess");
    }
    Message run;
    run.type = MsgType::kRun;
    run.id = 6;
    run.session = "sess";
    run.n = 8;
    run.budget = 40;
    Message out = roundtrip(run);
    EXPECT_EQ(out.type, MsgType::kRun);
    EXPECT_EQ(out.n, 8);
    EXPECT_EQ(out.budget, 40);

    Message bye;
    bye.type = MsgType::kShutdown;
    out = roundtrip(bye);
    EXPECT_EQ(out.type, MsgType::kShutdown);
}

TEST(ServeProtocol, WorkerHelloAdvertisesHeartbeatInterval)
{
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "worker";
    hello.capacity = 2;
    hello.heartbeat_ms = 250;
    Message out = roundtrip(hello);
    EXPECT_EQ(out.heartbeat_ms, 250);

    // A beacon-less worker (heartbeat_ms 0) round-trips as 0, matching
    // pre-heartbeat peers whose hellos omit the field entirely.
    hello.heartbeat_ms = 0;
    out = roundtrip(hello);
    EXPECT_EQ(out.heartbeat_ms, 0);
}

TEST(ServeProtocol, HeartbeatRoundtripCarriesCompletedEvals)
{
    Message hb;
    hb.type = MsgType::kHeartbeat;
    hb.evals = 17;
    Message out = roundtrip(hb);
    EXPECT_EQ(out.type, MsgType::kHeartbeat);
    EXPECT_EQ(out.id, 0u);  // unsolicited: not a reply to any request
    EXPECT_EQ(out.evals, 17u);
}

TEST(ServeProtocol, EvaluateCarriesOptionalTraceContext)
{
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = 9;
    m.benchmark = "SDDMM/email-Enron";
    m.config = mixed_config();
    m.trace_version = kTraceVersion;
    m.trace_run = "run-abc123";
    m.span_id = 42;
    Message out = roundtrip(m);
    EXPECT_EQ(out.trace_version, kTraceVersion);
    EXPECT_EQ(out.trace_run, "run-abc123");
    EXPECT_EQ(out.span_id, 42u);

    // Untraced evaluate: no context fields on the wire, decodes to 0.
    m.trace_version = 0;
    m.trace_run.clear();
    m.span_id = 0;
    std::string frame = encode(m);
    EXPECT_EQ(frame.find("tcv"), std::string::npos) << frame;
    out = roundtrip(m);
    EXPECT_EQ(out.trace_version, 0);
    EXPECT_TRUE(out.trace_run.empty());
}

TEST(ServeProtocol, ResultAndGoodbyeShipWorkerSpans)
{
    WireSpan s1;
    s1.name = "worker.evaluate";
    s1.category = "worker";
    s1.thread_id = 1;
    s1.start_us = 100;
    s1.duration_us = 2500;
    WireSpan s2;
    s2.name = "worker.idle";
    s2.category = "worker";
    s2.thread_id = 1;
    s2.start_us = 2600;
    s2.duration_us = 0;

    Message r;
    r.type = MsgType::kResult;
    r.id = 5;
    r.value = 1.25;
    r.spans = {s1, s2};
    Message out = roundtrip(r);
    ASSERT_EQ(out.spans.size(), 2u);
    EXPECT_EQ(out.spans[0].name, "worker.evaluate");
    EXPECT_EQ(out.spans[0].category, "worker");
    EXPECT_EQ(out.spans[0].start_us, 100u);
    EXPECT_EQ(out.spans[0].duration_us, 2500u);
    EXPECT_EQ(out.spans[1].name, "worker.idle");
    EXPECT_EQ(out.spans[1].duration_us, 0u);

    Message bye;
    bye.type = MsgType::kGoodbye;
    bye.evals = 31;
    bye.spans = {s1};
    out = roundtrip(bye);
    EXPECT_EQ(out.type, MsgType::kGoodbye);
    EXPECT_EQ(out.evals, 31u);
    ASSERT_EQ(out.spans.size(), 1u);
    EXPECT_EQ(out.spans[0].name, "worker.evaluate");

    // A span-less result emits no "spans" array at all.
    Message plain;
    plain.type = MsgType::kResult;
    plain.id = 6;
    plain.value = 0.5;
    EXPECT_EQ(encode(plain).find("spans"), std::string::npos);
}

TEST(ServeProtocol, StatsRequestRoundtrip)
{
    Message m;
    m.type = MsgType::kStats;
    m.id = 11;
    m.session = "sess";
    Message out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kStats);
    EXPECT_EQ(out.id, 11u);
    EXPECT_EQ(out.session, "sess");

    // Empty session (the server-wide report request) survives too.
    m.session.clear();
    out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kStats);
    EXPECT_TRUE(out.session.empty());
}

TEST(ServeProtocol, StatsReportRoundtripPreservesEntries)
{
    Message m;
    m.type = MsgType::kStatsReport;
    m.id = 12;
    m.session = "sess";

    StatEntry counter;
    counter.name = "serve.requests_total";
    counter.kind = "counter";
    counter.value = 1234;
    m.stats.push_back(counter);

    StatEntry gauge;
    gauge.name = "sessions.live";
    gauge.kind = "gauge";
    gauge.value = 3.5;
    m.stats.push_back(gauge);

    // The per-session latency shape the serve tests pin: count/sum plus
    // exact p50/p90/p99 doubles must survive the wire bit-for-bit.
    StatEntry hist;
    hist.name = "session.suggest_seconds";
    hist.kind = "histogram";
    hist.count = 42;
    hist.sum = 0.125;
    hist.p50 = 0.00170898437500012;
    hist.p90 = 0.0312;
    hist.p99 = 1.5e-3;
    m.stats.push_back(hist);

    Message out = roundtrip(m);
    EXPECT_EQ(out.type, MsgType::kStatsReport);
    EXPECT_EQ(out.stats_version, kStatsVersion);
    ASSERT_EQ(out.stats.size(), 3u);
    EXPECT_EQ(out.stats[0].name, "serve.requests_total");
    EXPECT_EQ(out.stats[0].kind, "counter");
    EXPECT_DOUBLE_EQ(out.stats[0].value, 1234.0);
    EXPECT_EQ(out.stats[1].kind, "gauge");
    EXPECT_DOUBLE_EQ(out.stats[1].value, 3.5);
    EXPECT_EQ(out.stats[2].kind, "histogram");
    EXPECT_EQ(out.stats[2].count, 42u);
    EXPECT_DOUBLE_EQ(out.stats[2].sum, 0.125);
    EXPECT_DOUBLE_EQ(out.stats[2].p50, 0.00170898437500012);
    EXPECT_DOUBLE_EQ(out.stats[2].p90, 0.0312);
    EXPECT_DOUBLE_EQ(out.stats[2].p99, 1.5e-3);

    // An empty report (a fresh server) round-trips as well.
    Message empty;
    empty.type = MsgType::kStatsReport;
    empty.id = 13;
    out = roundtrip(empty);
    EXPECT_EQ(out.type, MsgType::kStatsReport);
    EXPECT_TRUE(out.stats.empty());
}

TEST(ServeProtocol, StatsReportNonFiniteValuesSurvive)
{
    Message m;
    m.type = MsgType::kStatsReport;
    m.id = 14;
    StatEntry e;
    e.name = "weird";
    e.kind = "gauge";
    e.value = std::numeric_limits<double>::infinity();
    m.stats.push_back(e);
    Message out = roundtrip(m);
    ASSERT_EQ(out.stats.size(), 1u);
    EXPECT_TRUE(std::isinf(out.stats[0].value));
}

TEST(ServeProtocol, MalformedStatsFramesAreRejected)
{
    Message out;
    std::string err;
    // stats_report requires the version field.
    EXPECT_FALSE(decode("{\"type\":\"stats_report\",\"id\":1,"
                        "\"stats\":[]}",
                        out, &err));
    // Truncated entry array.
    EXPECT_FALSE(decode("{\"type\":\"stats_report\",\"id\":1,\"sv\":1,"
                        "\"stats\":[{\"name\":\"x\",\"kind\":\"counter\"",
                        out, &err));
    // Negative histogram count.
    EXPECT_FALSE(decode(
        "{\"type\":\"stats_report\",\"id\":1,\"sv\":1,\"stats\":"
        "[{\"name\":\"x\",\"kind\":\"histogram\",\"value\":0,"
        "\"count\":-4,\"sum\":0,\"p50\":0,\"p90\":0,\"p99\":0}]}",
        out, &err));
}

TEST(ServeProtocol, ErrorTextIsSanitizedForFraming)
{
    Message m = make_error(1, "bad \"quote\" and\nnewline");
    std::string frame = encode(m);
    EXPECT_EQ(frame.find('\n'), std::string::npos);
    Message out;
    ASSERT_TRUE(decode(frame, out));
    EXPECT_EQ(out.text, "bad 'quote' and newline");
}

TEST(ServeProtocol, MalformedFramesAreRejected)
{
    Message out;
    std::string err;
    EXPECT_FALSE(decode("", out, &err));
    EXPECT_FALSE(decode("this is not json", out, &err));
    EXPECT_FALSE(decode("{\"no_type\":1}", out, &err));
    EXPECT_FALSE(decode("{\"type\":\"martian\"}", out, &err));
    EXPECT_FALSE(err.empty());
    // Required fields missing.
    EXPECT_FALSE(decode("{\"type\":\"suggest\",\"id\":1}", out, &err));
    EXPECT_FALSE(decode("{\"type\":\"evaluate\",\"id\":1,"
                        "\"benchmark\":\"x\",\"seed\":1,\"index\":0}",
                        out, &err));
    // Truncated nested arrays.
    EXPECT_FALSE(decode("{\"type\":\"configs\",\"id\":1,\"first_index\":0,"
                        "\"configs\":[[{\"i\":3}",
                        out, &err));
    EXPECT_FALSE(decode("{\"type\":\"observe\",\"id\":1,\"session\":\"s\","
                        "\"results\":[{\"config\":[{\"i\":3}],\"value\":1}]}",
                        out, &err));
}

TEST(ServeTransport, LoopbackPairDeliversBothDirections)
{
    auto [a, b] = loopback_pair();
    ASSERT_TRUE(a->send("ping"));
    std::string line;
    ASSERT_EQ(b->recv(line, 1000), RecvStatus::kOk);
    EXPECT_EQ(line, "ping");
    ASSERT_TRUE(b->send("pong"));
    ASSERT_EQ(a->recv(line, 1000), RecvStatus::kOk);
    EXPECT_EQ(line, "pong");

    EXPECT_EQ(a->recv(line, 10), RecvStatus::kTimeout);
    b->close();
    EXPECT_EQ(a->recv(line, 1000), RecvStatus::kClosed);
    EXPECT_FALSE(a->send("into the void"));
}

TEST(ServeTransport, LoopbackDrainsQueuedFramesAfterClose)
{
    auto [a, b] = loopback_pair();
    ASSERT_TRUE(a->send("one"));
    ASSERT_TRUE(a->send("two"));
    a->close();
    std::string line;
    // Already-queued frames are still deliverable after the close.
    EXPECT_EQ(b->recv(line, 100), RecvStatus::kOk);
    EXPECT_EQ(line, "one");
    EXPECT_EQ(b->recv(line, 100), RecvStatus::kOk);
    EXPECT_EQ(line, "two");
    EXPECT_EQ(b->recv(line, 100), RecvStatus::kClosed);
}

TEST(ServeTransport, PipePairFramesLines)
{
    auto [a, b] = pipe_pair();
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    // Protocol frames cross the fd boundary intact, including several
    // queued at once.
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = 9;
    m.benchmark = "bench";
    m.seed = 3;
    m.index = 7;
    m.config = mixed_config();
    ASSERT_TRUE(a->send(encode(m)));
    ASSERT_TRUE(a->send("second"));
    std::string line;
    ASSERT_EQ(b->recv(line, 2000), RecvStatus::kOk);
    Message out;
    ASSERT_TRUE(decode(line, out));
    EXPECT_TRUE(configs_equal(out.config, mixed_config()));
    ASSERT_EQ(b->recv(line, 2000), RecvStatus::kOk);
    EXPECT_EQ(line, "second");

    EXPECT_EQ(b->recv(line, 10), RecvStatus::kTimeout);
    a->close();
    EXPECT_EQ(b->recv(line, 2000), RecvStatus::kClosed);
}

TEST(ServeTransport, ConcurrentSendersInterleaveWholeFrames)
{
    auto [a, b] = loopback_pair();
    const int kPerThread = 200;
    std::thread t1([&] {
        for (int i = 0; i < kPerThread; ++i)
            a->send("t1-" + std::to_string(i));
    });
    std::thread t2([&] {
        for (int i = 0; i < kPerThread; ++i)
            a->send("t2-" + std::to_string(i));
    });
    int received = 0;
    int next1 = 0;
    int next2 = 0;
    std::string line;
    while (received < 2 * kPerThread &&
           b->recv(line, 2000) == RecvStatus::kOk) {
        ++received;
        // Per-sender FIFO order is preserved.
        if (line.rfind("t1-", 0) == 0)
            EXPECT_EQ(line, "t1-" + std::to_string(next1++));
        else
            EXPECT_EQ(line, "t2-" + std::to_string(next2++));
    }
    t1.join();
    t2.join();
    EXPECT_EQ(received, 2 * kPerThread);
    EXPECT_EQ(next1, kPerThread);
    EXPECT_EQ(next2, kPerThread);
}

}  // namespace
}  // namespace baco::serve
