// Run-multiplexed coordination: concurrent fleet-driven runs on one
// shared worker fleet must each reproduce their undisturbed serial
// references bit-for-bit, admission control must refuse runs past the
// cap with a structured "busy" error, and a worker killed for
// heartbeat silence must be able to re-register over the same socket
// and be re-leased to new runs.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

std::string
unique_unix_path(const std::string& tag)
{
    static int counter = 0;
    return testing::TempDir() + "baco_conc_" + tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++) +
           ".sock";
}

/** A worker fleet of loopback threads attached to a coordinator. */
struct Fleet {
  Coordinator coordinator;
  std::vector<std::thread> threads;

  explicit Fleet(int workers, CoordinatorOptions opt = CoordinatorOptions{})
      : coordinator(opt)
  {
      threads = attach_loopback_workers(coordinator, workers);
      EXPECT_EQ(coordinator.num_workers(),
                static_cast<std::size_t>(workers));
  }

  ~Fleet()
  {
      coordinator.shutdown();
      for (std::thread& t : threads)
          t.join();
  }
};

TEST(ServeConcurrent, RunTagAndBusyCodeRoundTripAndStayOffLegacyFrames)
{
    // The run tag crosses the wire on every frame type that carries it.
    Message m;
    m.type = MsgType::kEvaluate;
    m.id = 77;
    m.benchmark = kBench;
    m.seed = 9;
    m.index = 4;
    m.run = 7;
    std::string wire = encode(m);
    EXPECT_NE(wire.find("\"run\":7"), std::string::npos) << wire;
    Message out;
    ASSERT_TRUE(decode(wire, out));
    EXPECT_EQ(out.run, 7u);

    // An untagged frame is byte-identical to the pre-multiplexing
    // protocol: no "run" key at all, and decoding leaves run at 0.
    m.run = 0;
    wire = encode(m);
    EXPECT_EQ(wire.find("\"run\""), std::string::npos) << wire;
    Message legacy;
    ASSERT_TRUE(decode(wire, legacy));
    EXPECT_EQ(legacy.run, 0u);

    Message r;
    r.type = MsgType::kResult;
    r.id = 77;
    r.value = 2.5;
    r.run = 7;
    ASSERT_TRUE(decode(encode(r), out));
    EXPECT_EQ(out.run, 7u);

    Message beat;
    beat.type = MsgType::kHeartbeat;
    beat.evals = 5;
    beat.run = 7;
    ASSERT_TRUE(decode(encode(beat), out));
    EXPECT_EQ(out.run, 7u);

    Message bye;
    bye.type = MsgType::kGoodbye;
    bye.evals = 9;
    bye.run = 7;
    ASSERT_TRUE(decode(encode(bye), out));
    EXPECT_EQ(out.run, 7u);

    // The machine-readable error code: absent unless set, round-trips
    // when set.
    Message err = make_error(77, "coordinator busy: 1 active runs");
    EXPECT_EQ(encode(err).find("\"code\""), std::string::npos);
    err.code = "busy";
    wire = encode(err);
    EXPECT_NE(wire.find("\"code\":\"busy\""), std::string::npos) << wire;
    ASSERT_TRUE(decode(wire, out));
    EXPECT_EQ(out.code, "busy");
}

TEST(ServeConcurrent, ConcurrentFleetRunsMatchSerialRuns)
{
    // Three tuning runs share one 2-worker fleet CONCURRENTLY; each
    // must produce bit-for-bit the history an undisturbed fleet gives
    // its seed. This is the determinism acceptance pin for the
    // run-multiplexed scheduler: values are (seed, index)-derived and
    // assembly is per-run, so interleaving must be unobservable.
    const Benchmark& b = suite::find_benchmark(kBench);
    const int budget = 12;
    const int batch = 3;
    const std::uint64_t seeds[] = {61, 62, 63};
    constexpr int kRuns = 3;

    std::vector<TuningHistory> refs;
    for (std::uint64_t seed : seeds) {
        suite::DistributedOptions dopt;
        dopt.workers = 2;
        dopt.batch_size = batch;
        refs.push_back(suite::run_method_distributed(
            b, suite::Method::kBaco, budget, seed, dopt));
    }

    Fleet fleet(2);
    std::vector<TuningHistory> got(kRuns);
    std::vector<std::thread> drivers;
    for (int i = 0; i < kRuns; ++i) {
        drivers.emplace_back([&fleet, &got, &seeds, &b, i] {
            std::shared_ptr<SearchSpace> space =
                b.make_space(SpaceVariant{});
            std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
                *space, suite::Method::kBaco, budget, b.doe_samples,
                seeds[i]);
            BatchSpec spec;
            spec.benchmark = b.name;
            spec.run_seed = seeds[i];
            got[i] = fleet.coordinator.run(*tuner, spec, batch);
        });
    }
    for (std::thread& t : drivers)
        t.join();
    for (int i = 0; i < kRuns; ++i) {
        EXPECT_TRUE(histories_equal(refs[i], got[i]))
            << "seed " << seeds[i];
    }
}

TEST(ServeConcurrent, ConcurrentRunRequestsShareTheFleet)
{
    // Server level: two socket clients issue overlapping sync run
    // frames against one acceptor and a shared 2-worker fleet. Both
    // must complete their full budgets with the outcomes an unshared
    // in-process run gives the same (session, seed).
    const int budget = 9;
    const int batch = 3;
    std::string path = unique_unix_path("share");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    Coordinator coordinator;
    std::vector<std::thread> workers =
        attach_loopback_workers(coordinator, 2);
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    auto run_session = [&](Transport& t, const std::string& name,
                           std::uint64_t seed) {
        SessionClient client(t);
        EXPECT_TRUE(client.handshake());
        Message open = client.open(name, kBench, "baco", budget, seed);
        EXPECT_EQ(open.type, MsgType::kOpened) << open.text;
        Message run;
        run.type = MsgType::kRun;
        run.session = name;
        run.n = batch;
        Message done = client.rpc(std::move(run));
        EXPECT_EQ(done.type, MsgType::kDone) << done.text;
        EXPECT_EQ(client.close(name).type, MsgType::kOk);
        return done;
    };

    // Undisturbed references: the same runs over single-connection
    // servers with no fleet (determinism is placement-independent, so
    // in-process evaluation is the same contract).
    auto reference = [&](const std::string& name, std::uint64_t seed) {
        SessionManager local_sessions;
        ServerContext local_ctx;
        local_ctx.sessions = &local_sessions;
        auto [client_end, server_end] = loopback_pair();
        std::thread local_server(
            [&local_ctx,
             t = std::shared_ptr<Transport>(std::move(server_end))] {
                serve_connection(*t, local_ctx);
            });
        Message done = run_session(*client_end, name, seed);
        Message bye;
        bye.type = MsgType::kShutdown;
        client_end->send(encode(bye));
        local_server.join();
        return done;
    };
    Message ref1 = reference("c1", 41);
    Message ref2 = reference("c2", 42);

    Message done1;
    Message done2;
    std::thread client1([&] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        done1 = run_session(*t, "c1", 41);
    });
    std::thread client2([&] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        done2 = run_session(*t, "c2", 42);
    });
    client1.join();
    client2.join();

    EXPECT_EQ(done1.evals, static_cast<std::uint64_t>(budget));
    EXPECT_EQ(done2.evals, static_cast<std::uint64_t>(budget));
    EXPECT_EQ(done1.evals, ref1.evals);
    EXPECT_EQ(done1.best, ref1.best);
    EXPECT_EQ(done2.evals, ref2.evals);
    EXPECT_EQ(done2.best, ref2.best);

    acceptor.stop();
    server.join();
    coordinator.shutdown();
    for (std::thread& w : workers)
        w.join();
}

TEST(ServeConcurrent, AdmissionControlCapsActiveRuns)
{
    CoordinatorOptions copt;
    copt.max_active_runs = 1;
    Fleet fleet(1, copt);
    {
        Coordinator::RunLease lease = fleet.coordinator.begin_run();
        ASSERT_TRUE(lease);
        EXPECT_EQ(fleet.coordinator.active_runs(), 1u);
        // Past the cap with no admission wait: an immediate refusal.
        EXPECT_THROW(fleet.coordinator.begin_run(), CoordinatorBusy);
        EXPECT_EQ(fleet.coordinator.active_runs(), 1u);
    }
    // The lease released its run: admission reopens.
    Coordinator::RunLease next = fleet.coordinator.begin_run();
    EXPECT_TRUE(next);
    EXPECT_EQ(fleet.coordinator.active_runs(), 1u);
}

TEST(ServeConcurrent, BusyRunRequestGetsStructuredErrorFrame)
{
    // A run frame refused by admission control must come back as an
    // error with code "busy" — machine-readable backoff, not text
    // matching — and succeed once the fleet frees up.
    std::string path = unique_unix_path("busy");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    CoordinatorOptions copt;
    copt.max_active_runs = 1;
    Coordinator coordinator(copt);
    std::vector<std::thread> workers =
        attach_loopback_workers(coordinator, 1);
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    std::unique_ptr<Transport> t = connect_socket("unix:" + path);
    ASSERT_TRUE(t);
    SessionClient client(*t);
    ASSERT_TRUE(client.handshake());
    ASSERT_EQ(client.open("b", kBench, "Uniform", 6, 3).type,
              MsgType::kOpened);

    Message run;
    run.type = MsgType::kRun;
    run.session = "b";
    run.n = 2;
    {
        // The only admission slot is held elsewhere (another tenant
        // mid-run, modeled by a direct lease on the shared fleet).
        Coordinator::RunLease occupant = coordinator.begin_run();
        Message refused = client.rpc(Message(run));
        ASSERT_EQ(refused.type, MsgType::kError) << refused.text;
        EXPECT_EQ(refused.code, "busy") << refused.text;
    }
    Message done = client.rpc(Message(run));
    EXPECT_EQ(done.type, MsgType::kDone) << done.text;
    EXPECT_EQ(done.evals, 6u);
    EXPECT_EQ(client.close("b").type, MsgType::kOk);

    acceptor.stop();
    server.join();
    coordinator.shutdown();
    for (std::thread& w : workers)
        w.join();
}

TEST(ServeConcurrent, WorkerReconnectsAfterHeartbeatDeath)
{
    // A worker goes silent mid-run (hung evaluation shape: socket open,
    // no beats). The run must complete on the survivor with results
    // identical to an undisturbed fleet; the SAME worker binary then
    // reconnects through the acceptor's registration path, is re-leased
    // work, and the next run matches its undisturbed reference too.
    const Benchmark& b = suite::find_benchmark(kBench);
    const int budget = 16;
    const int batch = 4;

    auto reference = [&](std::uint64_t seed) {
        suite::DistributedOptions dopt;
        dopt.workers = 2;
        dopt.batch_size = batch;
        return suite::run_method_distributed(b, suite::Method::kUniform,
                                             budget, seed, dopt);
    };
    TuningHistory ref1 = reference(77);
    TuningHistory ref2 = reference(78);

    std::string path = unique_unix_path("reborn");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    Coordinator coordinator;
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    std::thread healthy([&path] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        WorkerOptions opt;
        opt.heartbeat_ms = 50;
        run_worker_loop(*t, opt);
    });
    // The wedged worker: advertises a 50ms beacon, accepts work, never
    // answers and never beats — only missed heartbeats can catch it.
    std::atomic<bool> release{false};
    std::thread wedged([&path, &release] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        hello.capacity = 1;
        hello.heartbeat_ms = 50;
        ASSERT_TRUE(t->send(encode(hello)));
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    while (coordinator.num_workers() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    auto drive = [&](std::uint64_t seed) {
        std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
        std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
            *space, suite::Method::kUniform, budget, b.doe_samples, seed);
        BatchSpec spec;
        spec.benchmark = b.name;
        spec.run_seed = seed;
        return coordinator.run(*tuner, spec, batch);
    };

    TuningHistory mid_death = drive(77);
    EXPECT_TRUE(histories_equal(ref1, mid_death));
    EXPECT_EQ(coordinator.num_workers(), 1u);  // the wedge was killed

    // Re-registration: the same worker loop reconnects over the same
    // listening socket and must be admitted back into the fleet.
    std::thread reborn([&path] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        WorkerOptions opt;
        opt.heartbeat_ms = 50;
        run_worker_loop(*t, opt);
    });
    while (coordinator.num_workers() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    TuningHistory after_rebirth = drive(78);
    EXPECT_TRUE(histories_equal(ref2, after_rebirth));

    // The re-registered worker (health slot 2) actually served shards —
    // re-leasing is real, not just a live socket.
    std::uint64_t reborn_completed = 0;
    int alive = 0;
    for (const WorkerHealthSnapshot& h : coordinator.health()) {
        if (h.state == "alive")
            ++alive;
        if (h.worker == 2)
            reborn_completed = h.completed;
    }
    EXPECT_EQ(alive, 2);
    EXPECT_GE(reborn_completed, 1u);

    release.store(true);
    wedged.join();
    acceptor.stop();
    server.join();
    coordinator.shutdown();
    healthy.join();
    reborn.join();
}

}  // namespace
}  // namespace baco::serve
