// Expected improvement and its feasibility-weighted composition.

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.hpp"
#include "linalg/stats.hpp"

namespace baco {
namespace {

TEST(ExpectedImprovement, ClosedFormAgreement)
{
    // EI = (best - mu) Phi(z) + sigma phi(z).
    double mu = 1.0, var = 0.25, best = 1.2;
    double sigma = 0.5;
    double z = (best - mu) / sigma;
    double expected = (best - mu) * normal_cdf(z) + sigma * normal_pdf(z);
    EXPECT_NEAR(expected_improvement(mu, var, best), expected, 1e-12);
}

TEST(ExpectedImprovement, ZeroVarianceReducesToHinge)
{
    EXPECT_DOUBLE_EQ(expected_improvement(3.0, 0.0, 5.0), 2.0);
    EXPECT_DOUBLE_EQ(expected_improvement(5.0, 0.0, 3.0), 0.0);
}

TEST(ExpectedImprovement, MonotoneInMeanAndVariance)
{
    double best = 1.0;
    // Lower predicted mean -> higher EI.
    EXPECT_GT(expected_improvement(0.5, 0.1, best),
              expected_improvement(0.8, 0.1, best));
    // For a mean above best, more variance -> more EI (exploration).
    EXPECT_GT(expected_improvement(1.5, 1.0, best),
              expected_improvement(1.5, 0.01, best));
}

TEST(ExpectedImprovement, AlwaysNonNegative)
{
    for (double mu : {-2.0, 0.0, 3.0}) {
        for (double var : {0.0, 0.01, 1.0, 100.0}) {
            for (double best : {-1.0, 0.5, 4.0}) {
                EXPECT_GE(expected_improvement(mu, var, best), 0.0);
            }
        }
    }
}

TEST(ConstrainedEi, WeightsByFeasibilityProbability)
{
    double ei = expected_improvement(0.5, 0.2, 1.0);
    EXPECT_NEAR(constrained_ei(0.5, 0.2, 1.0, 0.5, 0.0), 0.5 * ei, 1e-12);
    EXPECT_NEAR(constrained_ei(0.5, 0.2, 1.0, 1.0, 0.0), ei, 1e-12);
}

TEST(ConstrainedEi, MinimumFeasibilityLimitRejects)
{
    // Below eps_f the candidate is rejected outright (negative score).
    EXPECT_LT(constrained_ei(0.5, 0.2, 1.0, 0.3, 0.4), 0.0);
    EXPECT_GE(constrained_ei(0.5, 0.2, 1.0, 0.5, 0.4), 0.0);
    // eps_f = 0 never rejects (P(eps_f = 0) > 0 guarantees completeness).
    EXPECT_GE(constrained_ei(0.5, 0.2, 1.0, 0.0001, 0.0), 0.0);
}

TEST(ConstrainedEi, NoiseFreeEiDiscouragesResampling)
{
    // At an already-observed point the latent variance is ~0 and the mean
    // is ~best, so EI is ~0 — the paper's argument for noise-free EI.
    double ei_at_best = expected_improvement(1.0, 1e-12, 1.0);
    double ei_nearby = expected_improvement(1.0, 0.5, 1.0);
    EXPECT_LT(ei_at_best, 1e-6);
    EXPECT_GT(ei_nearby, 0.1);
}

}  // namespace
}  // namespace baco
