// The batched evaluation engine: thread pool, serial/batched determinism,
// batch diversity, and parallel suite repetitions.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "baselines/random_search.hpp"
#include "core/tuner.hpp"
#include "exec/eval_engine.hpp"
#include "exec/thread_pool.hpp"
#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco {
namespace {

SearchSpace
synthetic_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_categorical("mode", {"a", "b"});
    s.add_ordinal("unroll", {1, 2, 4, 8}, true);
    s.add_constraint("unroll <= tile");
    return s;
}

/** Noisy objective: exercises the per-evaluation RNG streams. */
EvalResult
synthetic_eval(const Configuration& c, RngEngine& rng)
{
    double tile = static_cast<double>(as_int(c[0]));
    bool mode_b = as_int(c[1]) == 1;
    double unroll = static_cast<double>(as_int(c[2]));
    double v = 1.0 + std::pow(std::log2(tile / 32.0), 2) +
               (mode_b ? 0.0 : 1.5) +
               0.5 * std::pow(std::log2(unroll / 4.0), 2);
    return EvalResult{v * rng.lognormal_factor(0.05), true};
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; ++i)
        tasks.push_back([&count] { count.fetch_add(1); });
    pool.run(std::move(tasks));
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 17; ++i)
            tasks.push_back([&count] { count.fetch_add(1); });
        pool.run(std::move(tasks));
    }
    EXPECT_EQ(count.load(), 5 * 17);
}

TEST(EvalEngine, Batch1ReproducesSerialRunBitForBit)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 24;
    opt.doe_samples = 8;
    opt.seed = 42;

    TuningHistory serial = Tuner(s, opt).run(synthetic_eval);

    Tuner tuner(s, opt);
    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 1;
    EvalEngine engine(eopt);
    TuningHistory batched = engine.run(tuner, synthetic_eval);

    ASSERT_EQ(serial.size(), batched.size());
    EXPECT_TRUE(histories_equal(serial, batched));
    EXPECT_EQ(serial.best_value, batched.best_value);
}

TEST(EvalEngine, Batch4ReproducibleAcrossRunsAndCompletesBudget)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 24;
    opt.doe_samples = 8;
    opt.seed = 7;

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;

    Tuner t1(s, opt);
    TuningHistory h1 = EvalEngine(eopt).run(t1, synthetic_eval);
    Tuner t2(s, opt);
    TuningHistory h2 = EvalEngine(eopt).run(t2, synthetic_eval);

    EXPECT_EQ(h1.size(), 24u);
    EXPECT_TRUE(histories_equal(h1, h2));
}

TEST(EvalEngine, ConstantLiarBatchIsDiverse)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 40;
    opt.doe_samples = 8;
    opt.seed = 3;
    Tuner tuner(s, opt);

    // Get past the DoE phase so suggest() uses the model + constant liar.
    EvalEngineOptions eopt;
    eopt.batch_size = 4;
    EvalEngine engine(eopt);
    engine.drive(tuner, synthetic_eval, 12);

    std::vector<Configuration> batch = tuner.suggest(4);
    ASSERT_EQ(batch.size(), 4u);
    std::set<std::size_t> distinct;
    for (const Configuration& c : batch)
        distinct.insert(config_hash(c));
    EXPECT_EQ(distinct.size(), batch.size());
}

TEST(EvalEngine, BaselinesRunBatchedToFullBudget)
{
    using suite::Method;
    SearchSpace s = synthetic_space();
    const Method methods[] = {Method::kAtfOpenTuner, Method::kYtopt,
                              Method::kUniform, Method::kCotSampling};
    for (Method m : methods) {
        std::unique_ptr<AskTellTuner> tuner =
            suite::make_ask_tell(s, m, 20, 6, 11);
        EvalEngineOptions eopt;
        eopt.num_threads = 2;
        eopt.batch_size = 4;
        EvalEngine engine(eopt);
        TuningHistory h = engine.run(*tuner, synthetic_eval);
        EXPECT_EQ(h.size(), 20u) << suite::method_name(m);
        EXPECT_TRUE(h.best_config.has_value()) << suite::method_name(m);
    }
}

TEST(EvalEngine, BaselineBatch1MatchesSerialRun)
{
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 15;
    opt.seed = 5;
    TuningHistory serial = run_uniform_sampling(s, synthetic_eval, opt);

    RandomSearchTuner tuner(s, opt, /*biased_walk=*/false);
    EvalEngineOptions eopt;
    eopt.num_threads = 3;
    EvalEngine engine(eopt);
    TuningHistory batched = engine.run(tuner, synthetic_eval);
    EXPECT_TRUE(histories_equal(serial, batched));
}

TEST(SuiteRunner, ParallelRepetitionsMatchSerialStatistics)
{
    const Benchmark& b = suite::find_benchmark("SDDMM/email-Enron");
    int budget = 12;
    suite::RepStats serial =
        suite::run_repetitions(b, suite::Method::kUniform, budget, 4, 21);
    suite::RepStats parallel = suite::run_repetitions_parallel(
        b, suite::Method::kUniform, budget, 4, 21, /*num_threads=*/4);

    ASSERT_EQ(serial.trajectories.size(), parallel.trajectories.size());
    for (std::size_t r = 0; r < serial.trajectories.size(); ++r)
        EXPECT_EQ(serial.trajectories[r], parallel.trajectories[r]);
}

TEST(SuiteRunner, RunMethodBatchedMatchesRunMethodAtBatch1)
{
    const Benchmark& b = suite::find_benchmark("SDDMM/email-Enron");
    TuningHistory serial =
        suite::run_method(b, suite::Method::kUniform, 10, 31);
    EvalEngineOptions eopt;
    eopt.num_threads = 2;
    eopt.batch_size = 1;
    TuningHistory batched = suite::run_method_batched(
        b, suite::Method::kUniform, 10, 31, eopt);
    EXPECT_TRUE(histories_equal(serial, batched));
}

}  // namespace
}  // namespace baco
