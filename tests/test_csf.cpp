// Compressed Sparse Fiber storage and kernels against COO references.

#include <gtest/gtest.h>

#include "taco/csf.hpp"
#include "taco/generators.hpp"
#include "taco/kernels.hpp"

namespace baco::taco {
namespace {

TEST(Csf3, StructureOfSmallTensor)
{
    CooTensor3 coo;
    coo.dims = {3, 4, 5};
    coo.entries = {
        {{0, 1, 2}, 1.0}, {{0, 1, 4}, 2.0}, {{0, 3, 0}, 3.0},
        {{2, 0, 1}, 4.0},
    };
    CsfTensor3 t = CsfTensor3::from_coo(coo);
    // Two i-fibers (0 and 2).
    EXPECT_EQ(t.idx0, (std::vector<int>{0, 2}));
    // i=0 owns j-fibers {1, 3}; i=2 owns {0}.
    EXPECT_EQ(t.pos1, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(t.idx1, (std::vector<int>{1, 3, 0}));
    // j-fiber (0,1) owns k {2,4}; (0,3) owns {0}; (2,0) owns {1}.
    EXPECT_EQ(t.pos2, (std::vector<int>{0, 2, 3, 4}));
    EXPECT_EQ(t.idx2, (std::vector<int>{2, 4, 0, 1}));
    EXPECT_EQ(t.nnz(), 4);
}

TEST(Csf3, DuplicatesAreSummed)
{
    CooTensor3 coo;
    coo.dims = {2, 2, 2};
    coo.entries = {{{1, 0, 1}, 2.0}, {{1, 0, 1}, 3.0}, {{0, 0, 0}, 1.0}};
    CsfTensor3 t = CsfTensor3::from_coo(coo);
    EXPECT_EQ(t.nnz(), 2);
    EXPECT_DOUBLE_EQ(t.vals[1], 5.0);
}

TEST(Csf3, TtvMatchesCooKernel)
{
    RngEngine rng(1);
    CooTensor3 coo = generate_tensor3(profile("random1"), 0.0005, rng);
    CsfTensor3 csf = CsfTensor3::from_coo(coo);
    std::vector<double> c(static_cast<std::size_t>(coo.dims[2]));
    for (double& v : c)
        v = rng.uniform(-1, 1);

    Matrix ref = ttv(coo, c);
    Matrix got = ttv_csf(csf, c);
    ASSERT_EQ(got.rows(), ref.rows());
    ASSERT_EQ(got.cols(), ref.cols());
    for (std::size_t i = 0; i < ref.rows(); ++i)
        for (std::size_t j = 0; j < ref.cols(); ++j)
            EXPECT_NEAR(got(i, j), ref(i, j), 1e-10);
}

TEST(Csf4, MttkrpMatchesCooKernel)
{
    RngEngine rng(2);
    CooTensor4 coo = generate_tensor4(profile("uber"), 0.001, rng);
    CsfTensor4 csf = CsfTensor4::from_coo(coo);
    std::size_t rank = 5;
    auto dense = [&](int dim) {
        Matrix m(static_cast<std::size_t>(dim), rank);
        for (double& v : m.data())
            v = rng.uniform(-1, 1);
        return m;
    };
    Matrix c = dense(coo.dims[1]);
    Matrix d = dense(coo.dims[2]);
    Matrix e = dense(coo.dims[3]);

    Matrix ref = mttkrp4(coo, c, d, e);
    Matrix got = mttkrp4_csf(csf, c, d, e);
    for (std::size_t i = 0; i < ref.rows(); ++i)
        for (std::size_t j = 0; j < ref.cols(); ++j)
            EXPECT_NEAR(got(i, j), ref(i, j), 1e-9);
}

TEST(Csf4, FiberCountsAreMonotone)
{
    RngEngine rng(3);
    CooTensor4 coo = generate_tensor4(profile("nips"), 0.0005, rng);
    CsfTensor4 t = CsfTensor4::from_coo(coo);
    // Each level has at most as many fibers as the next level's entries.
    EXPECT_LE(t.idx0.size(), t.idx1.size());
    EXPECT_LE(t.idx1.size(), t.idx2.size());
    EXPECT_LE(t.idx2.size(), t.idx3.size());
    EXPECT_EQ(t.idx3.size(), t.vals.size());
    // Positions are monotone and bracket the next level exactly.
    EXPECT_EQ(t.pos1.front(), 0);
    EXPECT_EQ(static_cast<std::size_t>(t.pos1.back()), t.idx1.size());
    for (std::size_t i = 0; i + 1 < t.pos1.size(); ++i)
        EXPECT_LE(t.pos1[i], t.pos1[i + 1]);
}

TEST(Csf3, EmptyTensor)
{
    CooTensor3 coo;
    coo.dims = {4, 4, 4};
    CsfTensor3 t = CsfTensor3::from_coo(coo);
    EXPECT_EQ(t.nnz(), 0);
    std::vector<double> c(4, 1.0);
    Matrix a = ttv_csf(t, c);
    for (double v : a.data())
        EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace baco::taco
