// Positive-semidefiniteness properties of the Matérn-5/2 kernel over
// mixed spaces: proper metrics (real/integer/ordinal/categorical) always
// produce factorizable kernel matrices, while permutation *semimetrics*
// may not — which is exactly why GpModel guards its posterior solve
// (see gp_model.cpp). These tests pin down both behaviours.

#include <gtest/gtest.h>

#include "gp/kernel.hpp"
#include "gp/gp_model.hpp"
#include "linalg/cholesky.hpp"

namespace baco {
namespace {

DistanceTensor
tensor_from_space(const SearchSpace& s, const std::vector<Configuration>& xs)
{
    DistanceTensor t;
    t.n = xs.size();
    t.dists.assign(s.num_params(), Matrix(t.n, t.n));
    for (std::size_t k = 0; k < s.num_params(); ++k)
        for (std::size_t i = 0; i < t.n; ++i)
            for (std::size_t j = i + 1; j < t.n; ++j) {
                double v = s.dim_distance(k, xs[i], xs[j]);
                t.dists[k](i, j) = v;
                t.dists[k](j, i) = v;
            }
    return t;
}

GpHyperparams
hp_for(std::size_t dims, double log_ls)
{
    GpHyperparams hp;
    hp.log_lengthscales.assign(dims, log_ls);
    hp.log_outputscale = 0.0;
    hp.log_noise = std::log(1e-8);  // essentially noiseless: strict test
    return hp;
}

/** Sweep lengthscales: metric spaces must stay (numerically) PSD. */
class MetricKernelPsd : public ::testing::TestWithParam<double> {};

TEST_P(MetricKernelPsd, MetricSpacesFactorizeAtAnyLengthscale)
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_ordinal("o", {1, 2, 4, 8, 16}, true);
    s.add_integer("n", 0, 9);
    s.add_categorical("c", {"a", "b", "c"});
    RngEngine rng(11);
    std::vector<Configuration> xs;
    for (int i = 0; i < 40; ++i)
        xs.push_back(s.sample_unconstrained(rng));
    DistanceTensor t = tensor_from_space(s, xs);

    Matrix k = kernel_matrix(t, hp_for(s.num_params(), GetParam()));
    // A tiny jitter for floating-point slack must suffice.
    EXPECT_NO_THROW({
        CholeskyFactor f = cholesky_with_jitter(k, 1e-12, 6);
        (void)f;
    });
}

INSTANTIATE_TEST_SUITE_P(LengthscaleSweep, MetricKernelPsd,
                         ::testing::Values(std::log(0.05), std::log(0.2),
                                           std::log(0.5), std::log(1.0),
                                           std::log(3.0)));

TEST(SemimetricKernel, SpearmanMayNeedLargeJitterButAlwaysFactorizes)
{
    // The Spearman semimetric violates the triangle inequality, so the
    // kernel matrix can be indefinite — but the escalating jitter must
    // always rescue the factorization (diagonal dominance bound).
    SearchSpace s;
    s.add_permutation("p", 5, PermutationMetric::kSpearman);
    RngEngine rng(13);
    std::vector<Configuration> xs;
    for (int i = 0; i < 60; ++i)
        xs.push_back(s.sample_unconstrained(rng));
    DistanceTensor t = tensor_from_space(s, xs);

    for (double log_ls : {std::log(0.05), std::log(0.3), std::log(1.0)}) {
        Matrix k = kernel_matrix(t, hp_for(1, log_ls));
        EXPECT_NO_THROW({
            CholeskyFactor f = cholesky_with_jitter(k);
            (void)f;
        });
    }
}

TEST(SemimetricKernel, GpPosteriorStaysBoundedOnPermutationSpaces)
{
    // End-to-end guard: even when the semimetric kernel is ill-conditioned,
    // GpModel's posterior must produce bounded predictions.
    SearchSpace s;
    s.add_permutation("p", 4, PermutationMetric::kSpearman);
    s.add_ordinal("o", {1, 2, 4, 8}, true);
    RngEngine rng(17);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i < 22; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        ys.push_back(1.0 + rng.uniform());
        xs.push_back(std::move(c));
    }
    GpModel gp(s);
    gp.fit(xs, ys, rng);
    for (int i = 0; i < 30; ++i) {
        GpPrediction p = gp.predict(s.sample_unconstrained(rng));
        EXPECT_TRUE(std::isfinite(p.mean));
        EXPECT_GE(p.var, 0.0);
        // Predictions must stay within a sane envelope of the data range.
        EXPECT_GT(p.mean, -10.0);
        EXPECT_LT(p.mean, 10.0);
    }
}

}  // namespace
}  // namespace baco
