// Constraint expression language: parsing, evaluation, errors.

#include <gtest/gtest.h>

#include "core/expression.hpp"

namespace baco {
namespace {

double
eval(const std::string& src, const EvalContext& ctx = {})
{
    return parse_expression(src)->eval(ctx);
}

TEST(Expression, ArithmeticPrecedence)
{
    EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
    EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
    EXPECT_DOUBLE_EQ(eval("10 - 4 - 3"), 3.0);  // left associative
    EXPECT_DOUBLE_EQ(eval("8 / 2 / 2"), 2.0);
    EXPECT_DOUBLE_EQ(eval("-2 * 3"), -6.0);
}

TEST(Expression, ModuloIsIntegral)
{
    EXPECT_DOUBLE_EQ(eval("10 % 3"), 1.0);
    EXPECT_DOUBLE_EQ(eval("1024 % 64"), 0.0);
    EXPECT_THROW(eval("5 % 0"), std::runtime_error);
}

TEST(Expression, Comparisons)
{
    EXPECT_DOUBLE_EQ(eval("3 < 4"), 1.0);
    EXPECT_DOUBLE_EQ(eval("3 >= 4"), 0.0);
    EXPECT_DOUBLE_EQ(eval("2 == 2"), 1.0);
    EXPECT_DOUBLE_EQ(eval("2 != 2"), 0.0);
}

TEST(Expression, LogicalOperatorsAndShortCircuit)
{
    EXPECT_DOUBLE_EQ(eval("1 && 0"), 0.0);
    EXPECT_DOUBLE_EQ(eval("1 || 0"), 1.0);
    EXPECT_DOUBLE_EQ(eval("!0"), 1.0);
    // Short circuit: the division by zero on the right is never evaluated.
    EXPECT_DOUBLE_EQ(eval("0 && (1 % 0)"), 0.0);
    EXPECT_DOUBLE_EQ(eval("1 || (1 % 0)"), 1.0);
}

TEST(Expression, Variables)
{
    EvalContext ctx{{"p1", 4.0}, {"p2", 2.0}};
    EXPECT_DOUBLE_EQ(eval("p1 >= p2", ctx), 1.0);
    EXPECT_DOUBLE_EQ(eval("p1 % p2 == 0", ctx), 1.0);
    EXPECT_THROW(eval("unknown_var + 1", ctx), std::runtime_error);
}

TEST(Expression, PaperFigure4Constraints)
{
    // p1 >= p2, p4 >= p3, p5 >= 2*p4 from the paper's CoT example.
    EvalContext feasible{{"p1", 2}, {"p2", 2}, {"p3", 4}, {"p4", 4},
                         {"p5", 8}};
    EXPECT_DOUBLE_EQ(eval("p1 >= p2", feasible), 1.0);
    EXPECT_DOUBLE_EQ(eval("p4 >= p3", feasible), 1.0);
    EXPECT_DOUBLE_EQ(eval("p5 >= 2*p4", feasible), 1.0);
    EvalContext infeasible{{"p4", 4}, {"p5", 4}};
    EXPECT_DOUBLE_EQ(eval("p5 >= 2*p4", infeasible), 0.0);
}

TEST(Expression, NonLinearConstraints)
{
    // The class of constraints ConfigSpace-style tools cannot express.
    EvalContext ctx{{"n", 1024}, {"ti", 32}, {"tj", 16}};
    EXPECT_DOUBLE_EQ(eval("n % (ti * tj) == 0", ctx), 1.0);
    EXPECT_DOUBLE_EQ(eval("log2(ti) + log2(tj) <= 10", ctx), 1.0);
    EXPECT_DOUBLE_EQ(eval("pow(ti, 2) > n", ctx), 0.0);
}

TEST(Expression, Functions)
{
    EXPECT_DOUBLE_EQ(eval("min(3, 5)"), 3.0);
    EXPECT_DOUBLE_EQ(eval("max(3, 5)"), 5.0);
    EXPECT_DOUBLE_EQ(eval("abs(-4)"), 4.0);
    EXPECT_DOUBLE_EQ(eval("log2(8)"), 3.0);
    EXPECT_DOUBLE_EQ(eval("floor(2.7)"), 2.0);
    EXPECT_DOUBLE_EQ(eval("ceil(2.2)"), 3.0);
    EXPECT_THROW(eval("nosuchfn(1)"), std::runtime_error);
    EXPECT_THROW(eval("min(1)"), std::runtime_error);
}

TEST(Expression, SyntaxErrors)
{
    EXPECT_THROW(parse_expression("1 +"), std::runtime_error);
    EXPECT_THROW(parse_expression("(1 + 2"), std::runtime_error);
    EXPECT_THROW(parse_expression("1 2"), std::runtime_error);
    EXPECT_THROW(parse_expression("@"), std::runtime_error);
}

TEST(Expression, CollectVarsDeduplicates)
{
    ExpressionPtr e = parse_expression("a + b * a - max(c, b)");
    std::vector<std::string> vars = expression_vars(*e);
    ASSERT_EQ(vars.size(), 3u);
    EXPECT_EQ(vars[0], "a");
    EXPECT_EQ(vars[1], "b");
    EXPECT_EQ(vars[2], "c");
}

TEST(Expression, ScientificNumbers)
{
    EXPECT_DOUBLE_EQ(eval("1e3 + 2.5e-1"), 1000.25);
}

}  // namespace
}  // namespace baco
