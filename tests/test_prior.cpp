// The user-prior acquisition extension (paper Sec. 6): a good prior
// accelerates convergence, a misleading prior cannot prevent it.

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"

namespace baco {
namespace {

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_ordinal("unroll", {1, 2, 4, 8}, true);
    return s;
}

/** Optimum at tile=64, unroll=2 with value 1. */
EvalResult
objective(const Configuration& c, RngEngine&)
{
    double tile = static_cast<double>(as_int(c[0]));
    double unroll = static_cast<double>(as_int(c[1]));
    double v = 1.0 + std::pow(std::log2(tile / 64.0), 2) +
               std::pow(std::log2(unroll / 2.0), 2);
    return EvalResult{v, true};
}

double
mean_best(const std::function<double(const Configuration&)>& prior,
          int budget, int reps)
{
    double acc = 0.0;
    for (int r = 0; r < reps; ++r) {
        TunerOptions opt;
        opt.budget = budget;
        opt.doe_samples = 4;
        opt.seed = static_cast<std::uint64_t>(100 + r);
        opt.user_prior = prior;
        SearchSpace s = make_space();
        acc += Tuner(s, opt).run(objective).best_value;
    }
    return acc / reps;
}

TEST(UserPrior, GoodPriorAcceleratesEarlyConvergence)
{
    // Prior peaked at the true optimum.
    auto good = [](const Configuration& c) {
        double tile = static_cast<double>(as_int(c[0]));
        double unroll = static_cast<double>(as_int(c[1]));
        return std::exp(-std::pow(std::log2(tile / 64.0), 2) -
                        std::pow(std::log2(unroll / 2.0), 2));
    };
    double with_prior = mean_best(good, 10, 8);
    double without = mean_best(nullptr, 10, 8);
    EXPECT_LE(with_prior, without + 0.05);
}

TEST(UserPrior, MisleadingPriorDoesNotPreventConvergence)
{
    // Prior peaked at the *worst* corner.
    auto bad = [](const Configuration& c) {
        double tile = static_cast<double>(as_int(c[0]));
        return std::exp(-std::pow(std::log2(tile / 2.0), 2));
    };
    double with_bad_prior = mean_best(bad, 30, 6);
    // The 32-point space is nearly exhausted at budget 30: the optimum (1.0)
    // must still be found despite the misleading prior.
    EXPECT_LE(with_bad_prior, 1.2);
}

TEST(UserPrior, PriorInfluenceDecaysWithObservations)
{
    // Directly check the acquisition-weight schedule: the exponent
    // prior_strength/n shrinks the prior's effect as evidence accumulates.
    double prior_value = 0.1;
    double strength = 10.0;
    double early = std::pow(prior_value, strength / 5.0);    // n = 5
    double late = std::pow(prior_value, strength / 50.0);    // n = 50
    EXPECT_LT(early, late);   // stronger down-weighting early on
    EXPECT_GT(late, 0.5);     // nearly neutral once data dominates
}

TEST(UserPrior, ZeroPriorIsClamped)
{
    // A prior returning 0 must not produce NaN/-inf scores.
    auto zero = [](const Configuration&) { return 0.0; };
    double best = mean_best(zero, 12, 3);
    EXPECT_TRUE(std::isfinite(best));
    EXPECT_LE(best, 4.0);
}

}  // namespace
}  // namespace baco
