// Permutation semimetrics (paper Fig. 3) against brute-force ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/distance.hpp"

namespace baco {
namespace {

TEST(PermutationDistance, PaperFig3Example)
{
    // pi = [1,2,3,4], pi' = [2,4,3,1] (0-based: [0,1,2,3] vs [1,3,2,0]).
    Permutation a{0, 1, 2, 3};
    Permutation b{1, 3, 2, 0};
    // Discordant pairs: (1,4),(2,3),(2,4),(3,4) -> 4.
    EXPECT_EQ(kendall_distance(a, b), 4);
    // Squared movements: 1 + 4 + 0 + 9 = 14.
    EXPECT_EQ(spearman_distance(a, b), 14);
    // Elements displaced: 1, 2 and 4 -> 3.
    EXPECT_EQ(hamming_distance(a, b), 3);
}

TEST(PermutationDistance, IdentityIsZero)
{
    Permutation p{2, 0, 3, 1};
    for (auto m : {PermutationMetric::kKendall, PermutationMetric::kSpearman,
                   PermutationMetric::kHamming, PermutationMetric::kNaive}) {
        EXPECT_DOUBLE_EQ(permutation_distance(p, p, m), 0.0);
    }
}

TEST(PermutationDistance, Symmetry)
{
    Permutation a{0, 2, 1, 3}, b{3, 1, 2, 0};
    EXPECT_EQ(kendall_distance(a, b), kendall_distance(b, a));
    EXPECT_EQ(spearman_distance(a, b), spearman_distance(b, a));
    EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
}

TEST(PermutationDistance, ReversalAchievesMaxima)
{
    for (int m = 2; m <= 6; ++m) {
        Permutation id(static_cast<std::size_t>(m));
        std::iota(id.begin(), id.end(), 0);
        Permutation rev(id.rbegin(), id.rend());
        EXPECT_EQ(kendall_distance(id, rev), max_kendall(m));
        EXPECT_EQ(spearman_distance(id, rev), max_spearman(m));
        // All normalized metrics hit exactly 1 at the reversal (the Hamming
        // distance of a reversal is m - (m odd ? 1 : 0)).
        EXPECT_DOUBLE_EQ(
            permutation_distance(id, rev, PermutationMetric::kKendall), 1.0);
        EXPECT_DOUBLE_EQ(
            permutation_distance(id, rev, PermutationMetric::kSpearman), 1.0);
    }
}

TEST(PermutationDistance, NormalizationBounds)
{
    // All pairs of 4-permutations stay in [0, 1] for all metrics.
    std::vector<Permutation> all;
    Permutation p{0, 1, 2, 3};
    do {
        all.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    ASSERT_EQ(all.size(), 24u);
    for (const auto& a : all) {
        for (const auto& b : all) {
            for (auto m : {PermutationMetric::kKendall,
                           PermutationMetric::kSpearman,
                           PermutationMetric::kHamming,
                           PermutationMetric::kNaive}) {
                double d = permutation_distance(a, b, m);
                EXPECT_GE(d, 0.0);
                EXPECT_LE(d, 1.0);
            }
        }
    }
}

TEST(PermutationDistance, PaperSec41LoopExample)
{
    // Sec. 4.1: loop orders (l2,l3,l1,l4) vs (l4,l3,l1,l2): swapping the
    // first and last elements gives high Spearman but relatively smaller
    // Kendall and Hamming (after normalization).
    // As permutation vectors (element i -> position): first: l1->2,
    // l2->0, l3->1, l4->3; second: l1->2, l2->3, l3->1, l4->0.
    Permutation first{2, 0, 1, 3};
    Permutation second{2, 3, 1, 0};
    double spear = permutation_distance(first, second,
                                        PermutationMetric::kSpearman);
    double kendall = permutation_distance(first, second,
                                          PermutationMetric::kKendall);
    double hamming = permutation_distance(first, second,
                                          PermutationMetric::kHamming);
    EXPECT_GT(spear, kendall);
    EXPECT_GT(spear, hamming);
}

TEST(PermutationDistance, KendallBruteForceAgreement)
{
    // Kendall == number of pairwise order inversions, checked by brute
    // force over all pairs of 4-permutations.
    std::vector<Permutation> all;
    Permutation p{0, 1, 2, 3};
    do {
        all.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    for (const auto& a : all) {
        for (const auto& b : all) {
            int brute = 0;
            for (int i = 0; i < 4; ++i)
                for (int j = i + 1; j < 4; ++j)
                    if ((a[static_cast<std::size_t>(i)] <
                         a[static_cast<std::size_t>(j)]) !=
                        (b[static_cast<std::size_t>(i)] <
                         b[static_cast<std::size_t>(j)]))
                        ++brute;
            EXPECT_EQ(kendall_distance(a, b), brute);
        }
    }
}

}  // namespace
}  // namespace baco
