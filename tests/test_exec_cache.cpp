// Evaluation cache: canonical keys, hit/miss semantics, persistence, and
// engine short-circuiting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include <unistd.h>

#include "core/tuner.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"

namespace baco {
namespace {

SearchSpace
small_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64}, true);
    s.add_categorical("mode", {"a", "b"});
    return s;
}

/** Deterministic objective (no measurement noise). */
EvalResult
det_eval(const Configuration& c, RngEngine&)
{
    double tile = static_cast<double>(as_int(c[0]));
    return EvalResult{tile + (as_int(c[1]) == 0 ? 10.0 : 0.0), true};
}

TEST(EvalCache, CanonicalKeyDistinguishesTypesAndValues)
{
    Configuration a = {std::int64_t{4}, 0.5, Permutation{2, 0, 1}};
    Configuration b = {std::int64_t{4}, 0.5, Permutation{2, 1, 0}};
    Configuration c = {4.0, 0.5, Permutation{2, 0, 1}};  // int vs real tag
    EXPECT_NE(EvalCache::canonical_key(a), EvalCache::canonical_key(b));
    EXPECT_NE(EvalCache::canonical_key(a), EvalCache::canonical_key(c));
    EXPECT_EQ(EvalCache::canonical_key(a), EvalCache::canonical_key(a));
}

TEST(EvalCache, HitMissSemantics)
{
    EvalCache cache;
    Configuration c = {std::int64_t{8}, std::int64_t{1}};
    EXPECT_FALSE(cache.lookup(c).has_value());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    cache.insert(c, EvalResult{3.5, true});
    auto r = cache.lookup(c);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(r->value, 3.5);
    EXPECT_TRUE(r->feasible);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // First write wins.
    cache.insert(c, EvalResult{9.9, true});
    EXPECT_DOUBLE_EQ(cache.lookup(c)->value, 3.5);
}

TEST(EvalCache, SaveLoadRoundtrip)
{
    std::string path =
        testing::TempDir() + "baco_test_cache_roundtrip.jsonl";
    EvalCache cache;
    Configuration a = {std::int64_t{8}, std::int64_t{1}};
    Configuration b = {std::int64_t{2}, std::int64_t{0}};
    cache.insert(a, EvalResult{1.25, true});
    cache.insert(b, EvalResult::infeasible());
    ASSERT_TRUE(cache.save(path));

    EvalCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 2u);
    auto ra = loaded.lookup(a);
    ASSERT_TRUE(ra.has_value());
    EXPECT_DOUBLE_EQ(ra->value, 1.25);
    auto rb = loaded.lookup(b);
    ASSERT_TRUE(rb.has_value());
    EXPECT_FALSE(rb->feasible);
    std::remove(path.c_str());
}

TEST(EvalCache, LoadMissingFileFails)
{
    EvalCache cache;
    EXPECT_FALSE(cache.load("/nonexistent/baco_cache.jsonl"));
}

TEST(EvalCache, LoadSkipsAndCountsCorruptLines)
{
    std::string path = testing::TempDir() + "baco_test_cache_corrupt.jsonl";
    EvalCache cache;
    Configuration a = {std::int64_t{8}, std::int64_t{1}};
    Configuration b = {std::int64_t{2}, std::int64_t{0}};
    Configuration c = {std::int64_t{4}, std::int64_t{1}};
    cache.insert(a, EvalResult{1.25, true});
    cache.insert(b, EvalResult{2.5, true});
    cache.insert(c, EvalResult{7.0, false});
    ASSERT_TRUE(cache.save(path));

    // Simulate a crash mid-write (truncate the last line in half) plus a
    // garbage line appended by a faulty writer.
    {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(0, truncate(path.c_str(), size - 12));
        std::FILE* app = std::fopen(path.c_str(), "ab");
        ASSERT_NE(app, nullptr);
        std::fputs("\nnot json at all\n{\"key\":\"dangling\n", app);
        std::fclose(app);
    }

    EvalCache loaded;
    std::size_t corrupt = 0;
    ASSERT_TRUE(loaded.load(path, &corrupt));
    // Two intact entries survive; the truncated third and the two
    // garbage lines are skipped and counted.
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(corrupt, 3u);

    // The surviving entries are the uncorrupted ones, values intact.
    int found = 0;
    for (const Configuration* cfg : {&a, &b, &c}) {
        if (auto r = loaded.lookup(*cfg))
            ++found;
    }
    EXPECT_EQ(found, 2);
    std::remove(path.c_str());
}

namespace {
Configuration
cfg(std::int64_t tile, std::int64_t mode)
{
    return Configuration{tile, mode};
}
}  // namespace

TEST(EvalCache, LruBoundEvictsOldestAndCountsStats)
{
    EvalCache cache;
    cache.set_max_entries(2);
    cache.insert(cfg(2, 0), EvalResult{1.0, true});
    cache.insert(cfg(4, 0), EvalResult{2.0, true});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    // A lookup hit refreshes recency: after touching the oldest entry,
    // the *other* one is evicted by the next insert.
    ASSERT_TRUE(cache.lookup(cfg(2, 0)).has_value());
    cache.insert(cfg(8, 0), EvalResult{3.0, true});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.lookup(cfg(2, 0)).has_value());   // kept (touched)
    EXPECT_FALSE(cache.lookup(cfg(4, 0)).has_value());  // evicted
    EXPECT_TRUE(cache.lookup(cfg(8, 0)).has_value());

    // Shrinking the bound evicts immediately; the evicted entries'
    // accumulated hits show up in evicted_hits.
    std::uint64_t hits_before = cache.evicted_hits();
    cache.set_max_entries(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_GT(cache.evicted_hits(), hits_before);  // cfg(2,0) was hot

    // 0 removes the bound again.
    cache.set_max_entries(0);
    cache.insert(cfg(16, 0), EvalResult{4.0, true});
    cache.insert(cfg(32, 0), EvalResult{5.0, true});
    EXPECT_EQ(cache.size(), 3u);
}

TEST(EvalCache, BoundedReloadKeepsMostRecentlyUsedEntries)
{
    std::string path = testing::TempDir() + "baco_test_cache_lru.jsonl";
    EvalCache cache;
    for (std::int64_t t : {2, 4, 8, 16})
        cache.insert(cfg(t, 0), EvalResult{double(t), true});
    // Touch the two oldest so they are the most recently used at save.
    ASSERT_TRUE(cache.lookup(cfg(2, 0)).has_value());
    ASSERT_TRUE(cache.lookup(cfg(4, 0)).has_value());
    ASSERT_TRUE(cache.save(path));

    // Loading into a bounded cache keeps the hot entries and evicts the
    // cold tail (save orders least-recently-used first).
    EvalCache bounded;
    bounded.set_max_entries(2);
    ASSERT_TRUE(bounded.load(path));
    EXPECT_EQ(bounded.size(), 2u);
    EXPECT_EQ(bounded.evictions(), 2u);
    EXPECT_TRUE(bounded.lookup(cfg(2, 0)).has_value());
    EXPECT_TRUE(bounded.lookup(cfg(4, 0)).has_value());
    EXPECT_FALSE(bounded.lookup(cfg(8, 0)).has_value());
    EXPECT_FALSE(bounded.lookup(cfg(16, 0)).has_value());
    std::remove(path.c_str());
}

TEST(EvalCache, EngineAppliesLruBoundFromOptions)
{
    SearchSpace s = small_space();
    TunerOptions topt;
    topt.budget = 10;
    topt.doe_samples = 4;
    topt.seed = 9;
    Tuner tuner(s, topt);

    EvalCache cache;
    EvalEngineOptions eopt;
    eopt.batch_size = 2;
    eopt.cache = &cache;
    eopt.cache_max_entries = 3;
    EvalEngine engine(eopt);
    engine.run(tuner, det_eval);
    EXPECT_EQ(cache.max_entries(), 3u);
    EXPECT_LE(cache.size(), 3u);
    EXPECT_GT(cache.evictions(), 0u);
}

TEST(EvalCache, NamespacesIsolateBenchmarks)
{
    EvalCache cache;
    Configuration c = {std::int64_t{8}, std::int64_t{1}};
    cache.insert("bench-a@0011223344556677", c, EvalResult{1.0, true});
    cache.insert("bench-b@8899aabbccddeeff", c, EvalResult{2.0, true});

    auto ra = cache.lookup("bench-a@0011223344556677", c);
    auto rb = cache.lookup("bench-b@8899aabbccddeeff", c);
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_DOUBLE_EQ(ra->value, 1.0);
    EXPECT_DOUBLE_EQ(rb->value, 2.0);

    // The anonymous namespace is distinct from any named one.
    EXPECT_FALSE(cache.lookup(c).has_value());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(EvalCache, NamespacedEntriesSurviveSaveLoad)
{
    std::string path = testing::TempDir() + "baco_test_cache_ns.jsonl";
    Configuration c = {std::int64_t{4}, std::int64_t{0}};
    {
        EvalCache cache;
        cache.insert("SpMM/x@0123456789abcdef", c, EvalResult{7.5, true});
        cache.insert(c, EvalResult{1.5, true});
        ASSERT_TRUE(cache.save(path));
    }
    EvalCache loaded;
    ASSERT_TRUE(loaded.load(path));
    auto rn = loaded.lookup("SpMM/x@0123456789abcdef", c);
    ASSERT_TRUE(rn.has_value());
    EXPECT_DOUBLE_EQ(rn->value, 7.5);
    auto ra = loaded.lookup(c);
    ASSERT_TRUE(ra.has_value());
    EXPECT_DOUBLE_EQ(ra->value, 1.5);
    std::remove(path.c_str());
}

TEST(EvalCache, SpaceFingerprintTracksStructure)
{
    SearchSpace a = small_space();
    SearchSpace b = small_space();
    EXPECT_EQ(EvalCache::space_fingerprint(a),
              EvalCache::space_fingerprint(b));
    EXPECT_EQ(EvalCache::space_fingerprint(a).size(), 16u);

    // Adding a parameter, changing a value set, or adding a constraint
    // all change the identity.
    SearchSpace extra = small_space();
    extra.add_real("alpha", 0.0, 1.0);
    EXPECT_NE(EvalCache::space_fingerprint(a),
              EvalCache::space_fingerprint(extra));

    SearchSpace values;
    values.add_ordinal("tile", {2, 4, 8, 16, 32, 128}, true);
    values.add_categorical("mode", {"a", "b"});
    EXPECT_NE(EvalCache::space_fingerprint(a),
              EvalCache::space_fingerprint(values));

    SearchSpace constrained = small_space();
    constrained.add_constraint("tile >= 4");
    EXPECT_NE(EvalCache::space_fingerprint(a),
              EvalCache::space_fingerprint(constrained));

    // Benchmark name and fingerprint both enter the namespace key.
    EXPECT_NE(EvalCache::namespace_key("x", a),
              EvalCache::namespace_key("y", a));
    EXPECT_NE(EvalCache::namespace_key("x", a),
              EvalCache::namespace_key("x", constrained));
}

TEST(EvalCache, EngineRespectsNamespaceOption)
{
    SearchSpace s = small_space();
    std::atomic<int> calls{0};
    BlackBoxFn counted = [&calls](const Configuration& c, RngEngine& rng) {
        calls.fetch_add(1);
        return det_eval(c, rng);
    };

    TunerOptions opt;
    opt.budget = 6;
    opt.doe_samples = 3;
    opt.seed = 21;

    EvalCache cache;
    EvalEngineOptions ns1;
    ns1.cache = &cache;
    ns1.cache_namespace = "bench-one@aa";
    Tuner t1(s, opt);
    EvalEngine(ns1).run(t1, counted);
    int after_first = calls.load();
    EXPECT_EQ(after_first, 6);

    // Same configs under a different namespace: all misses, re-evaluated.
    EvalEngineOptions ns2 = ns1;
    ns2.cache_namespace = "bench-two@bb";
    Tuner t2(s, opt);
    EvalEngine(ns2).run(t2, counted);
    EXPECT_EQ(calls.load(), 2 * after_first);

    // Same namespace again: fully served from cache.
    Tuner t3(s, opt);
    EvalEngine(ns1).run(t3, counted);
    EXPECT_EQ(calls.load(), 2 * after_first);
}

TEST(EvalCache, EngineShortCircuitsRepeatRuns)
{
    SearchSpace s = small_space();
    std::atomic<int> calls{0};
    BlackBoxFn counted = [&calls](const Configuration& c, RngEngine& rng) {
        calls.fetch_add(1);
        return det_eval(c, rng);
    };

    TunerOptions opt;
    opt.budget = 10;
    opt.doe_samples = 4;
    opt.seed = 9;

    EvalCache cache;
    EvalEngineOptions eopt;
    eopt.batch_size = 2;
    eopt.cache = &cache;

    Tuner t1(s, opt);
    TuningHistory h1 = EvalEngine(eopt).run(t1, counted);
    int first_run_calls = calls.load();
    EXPECT_EQ(first_run_calls, 10);
    EXPECT_EQ(cache.size(), 10u);

    // Same seed, same deterministic objective: every configuration the
    // second run proposes is already cached, so the black box never runs.
    Tuner t2(s, opt);
    TuningHistory h2 = EvalEngine(eopt).run(t2, counted);
    EXPECT_EQ(calls.load(), first_run_calls);
    EXPECT_TRUE(histories_equal(h1, h2));
}

TEST(EvalCache, PersistedCacheShortCircuitsAcrossSessions)
{
    std::string path = testing::TempDir() + "baco_test_cache_session.jsonl";
    SearchSpace s = small_space();
    std::atomic<int> calls{0};
    BlackBoxFn counted = [&calls](const Configuration& c, RngEngine& rng) {
        calls.fetch_add(1);
        return det_eval(c, rng);
    };

    TunerOptions opt;
    opt.budget = 8;
    opt.doe_samples = 4;
    opt.seed = 17;

    {
        EvalCache cache;
        EvalEngineOptions eopt;
        eopt.cache = &cache;
        Tuner t(s, opt);
        EvalEngine(eopt).run(t, counted);
        ASSERT_TRUE(cache.save(path));
    }
    int session1_calls = calls.load();

    // A fresh "session" reloads the cache from disk.
    EvalCache cache;
    ASSERT_TRUE(cache.load(path));
    EvalEngineOptions eopt;
    eopt.cache = &cache;
    Tuner t(s, opt);
    EvalEngine(eopt).run(t, counted);
    EXPECT_EQ(calls.load(), session1_calls);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace baco
