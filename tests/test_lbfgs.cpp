// L-BFGS convergence on standard problems.

#include <gtest/gtest.h>

#include <cmath>

#include "gp/lbfgs.hpp"

namespace baco {
namespace {

TEST(Lbfgs, QuadraticBowl)
{
    // f(x) = sum (x_i - i)^2.
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        double v = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            double d = x[i] - static_cast<double>(i);
            v += d * d;
            g[i] = 2.0 * d;
        }
        return v;
    };
    LbfgsResult r = lbfgs_minimize(f, {10.0, -5.0, 3.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.0, 1e-4);
    EXPECT_NEAR(r.x[1], 1.0, 1e-4);
    EXPECT_NEAR(r.x[2], 2.0, 1e-4);
    EXPECT_NEAR(r.f, 0.0, 1e-8);
}

TEST(Lbfgs, Rosenbrock2d)
{
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        g[0] = -2.0 * a - 400.0 * x[0] * b;
        g[1] = 200.0 * b;
        return a * a + 100.0 * b * b;
    };
    LbfgsOptions opt;
    opt.max_iters = 300;
    LbfgsResult r = lbfgs_minimize(f, {-1.2, 1.0}, opt);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Lbfgs, IllConditionedQuadratic)
{
    // Condition number 1e4.
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        g[0] = 2.0 * x[0];
        g[1] = 2.0e4 * x[1];
        return x[0] * x[0] + 1.0e4 * x[1] * x[1];
    };
    LbfgsOptions opt;
    opt.max_iters = 200;
    LbfgsResult r = lbfgs_minimize(f, {5.0, 5.0}, opt);
    EXPECT_NEAR(r.f, 0.0, 1e-5);
}

TEST(Lbfgs, HandlesNonFiniteRegionsViaBacktracking)
{
    // f = -log(x) + x, defined for x > 0 only; minimum at x = 1.
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        if (x[0] <= 0.0) {
            g[0] = 0.0;
            return std::numeric_limits<double>::infinity();
        }
        g[0] = -1.0 / x[0] + 1.0;
        return -std::log(x[0]) + x[0];
    };
    LbfgsResult r = lbfgs_minimize(f, {0.1});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(Lbfgs, AlreadyAtOptimumStopsImmediately)
{
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        g[0] = 2.0 * x[0];
        return x[0] * x[0];
    };
    LbfgsResult r = lbfgs_minimize(f, {0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 1);
}

TEST(Lbfgs, RespectsIterationBudget)
{
    ObjectiveFn f = [](const std::vector<double>& x,
                       std::vector<double>& g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        g[0] = -2.0 * a - 400.0 * x[0] * b;
        g[1] = 200.0 * b;
        return a * a + 100.0 * b * b;
    };
    LbfgsOptions opt;
    opt.max_iters = 3;
    LbfgsResult r = lbfgs_minimize(f, {-1.2, 1.0}, opt);
    EXPECT_LE(r.iterations, 3);
}

}  // namespace
}  // namespace baco
