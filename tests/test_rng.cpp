// Determinism and distribution sanity of the RNG utilities.

#include <gtest/gtest.h>

#include <set>

#include "linalg/rng.hpp"
#include "linalg/stats.hpp"

namespace baco {
namespace {

TEST(Rng, DeterministicGivenSeed)
{
    RngEngine a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    RngEngine a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange)
{
    RngEngine rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniform_int(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, PermutationIsValid)
{
    RngEngine rng(3);
    for (int n : {1, 2, 5, 8}) {
        std::vector<int> p = rng.permutation(n);
        std::set<int> seen(p.begin(), p.end());
        EXPECT_EQ(static_cast<int>(seen.size()), n);
        EXPECT_EQ(*seen.begin(), 0);
        EXPECT_EQ(*seen.rbegin(), n - 1);
    }
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    RngEngine rng(11);
    auto idx = rng.sample_without_replacement(10, 6);
    ASSERT_EQ(idx.size(), 6u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 6u);
    for (std::size_t v : s)
        EXPECT_LT(v, 10u);
    // k > n clamps to n.
    EXPECT_EQ(rng.sample_without_replacement(4, 9).size(), 4u);
}

TEST(Rng, NormalMomentsRoughlyCorrect)
{
    RngEngine rng(5);
    std::vector<double> v;
    for (int i = 0; i < 20000; ++i)
        v.push_back(rng.normal(2.0, 3.0));
    EXPECT_NEAR(mean(v), 2.0, 0.1);
    EXPECT_NEAR(stddev(v), 3.0, 0.1);
}

TEST(Rng, LognormalFactorCentersAtOne)
{
    RngEngine rng(9);
    std::vector<double> v;
    for (int i = 0; i < 20000; ++i)
        v.push_back(std::log(rng.lognormal_factor(0.05)));
    EXPECT_NEAR(mean(v), 0.0, 0.01);
    EXPECT_NEAR(stddev(v), 0.05, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded)
{
    RngEngine a(123);
    RngEngine b = a.split();
    // The split stream must differ from the parent's continued stream.
    bool differs = false;
    RngEngine a2(123);
    (void)a2.split();
    for (int i = 0; i < 10; ++i)
        differs |= a.uniform() != b.uniform();
    EXPECT_TRUE(differs);
}

TEST(Rng, BernoulliProbability)
{
    RngEngine rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace baco
