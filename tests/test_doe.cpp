// Design-of-experiments sampling: uniqueness, feasibility, exhaustion.

#include <gtest/gtest.h>

#include <set>

#include "core/doe.hpp"

namespace baco {
namespace {

TEST(Doe, ProducesUniqueFeasibleSamples)
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2, 4, 8, 16, 32}, true);
    s.add_ordinal("b", {1, 2, 4, 8, 16, 32}, true);
    s.add_constraint("a >= b");
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(1);
    std::vector<Configuration> doe = doe_random_sample(s, &cot, 15, rng);
    ASSERT_EQ(doe.size(), 15u);
    std::set<std::size_t> hashes;
    for (const Configuration& c : doe) {
        EXPECT_TRUE(s.satisfies(c));
        hashes.insert(config_hash(c));
    }
    EXPECT_EQ(hashes.size(), 15u);
}

TEST(Doe, WorksWithoutCot)
{
    SearchSpace s;
    s.add_integer("x", 0, 100);
    s.add_constraint("x % 2 == 0");
    RngEngine rng(2);
    std::vector<Configuration> doe = doe_random_sample(s, nullptr, 10, rng);
    ASSERT_EQ(doe.size(), 10u);
    for (const Configuration& c : doe)
        EXPECT_EQ(as_int(c[0]) % 2, 0);
}

TEST(Doe, CapsAtFeasibleSetSize)
{
    // Only 3 feasible configurations exist; asking for 10 returns 3.
    SearchSpace s;
    s.add_ordinal("a", {1, 2});
    s.add_ordinal("b", {1, 2});
    s.add_constraint("a >= b");
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(3);
    std::vector<Configuration> doe = doe_random_sample(s, &cot, 10, rng);
    EXPECT_EQ(doe.size(), 3u);
}

TEST(Doe, BiasedModeStillFeasible)
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2, 4});
    s.add_ordinal("b", {1, 2, 4});
    s.add_constraint("a >= b");
    ChainOfTrees cot = ChainOfTrees::build(s);
    RngEngine rng(4);
    std::vector<Configuration> doe =
        doe_random_sample(s, &cot, 5, rng, /*uniform_leaves=*/false);
    ASSERT_EQ(doe.size(), 5u);
    for (const Configuration& c : doe)
        EXPECT_TRUE(s.satisfies(c));
}

TEST(Doe, ZeroSamples)
{
    SearchSpace s;
    s.add_integer("x", 0, 3);
    RngEngine rng(5);
    EXPECT_TRUE(doe_random_sample(s, nullptr, 0, rng).empty());
}

}  // namespace
}  // namespace baco
