// End-to-end integration: BaCO on the real benchmark substrates, checking
// the paper's qualitative claims on a reduced scale.

#include <gtest/gtest.h>

#include <algorithm>

#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco::suite {
namespace {

TEST(Integration, BacoReachesExpertOnTacoSpmm)
{
    const Benchmark& b = find_benchmark("SpMM/scircuit");
    RepStats stats = run_repetitions(b, Method::kBaco, b.full_budget, 3, 100);
    // With the full budget BaCO should be at or past expert level
    // (Table 8: BaCO > 1.0 on every SpMM benchmark).
    double rel = stats.mean_rel_to_reference(b.reference_cost, b.full_budget);
    EXPECT_GT(rel, 0.9);
}

TEST(Integration, BacoBeatsUniformSamplingOnTinyBudget)
{
    const Benchmark& b = find_benchmark("SDDMM/email-Enron");
    int tiny = b.tiny_budget();
    RepStats baco = run_repetitions(b, Method::kBaco, tiny, 3, 7);
    RepStats uni = run_repetitions(b, Method::kUniform, tiny, 3, 7);
    EXPECT_LE(baco.mean_best_at(tiny), uni.mean_best_at(tiny) * 1.1);
}

TEST(Integration, BacoHandlesHiddenConstraintsOnMmGpu)
{
    const Benchmark& b = find_benchmark("MM_GPU");
    TuningHistory h = run_method(b, Method::kBaco, 40, 11);
    EXPECT_EQ(h.size(), 40u);
    ASSERT_TRUE(h.best_config.has_value());
    EXPECT_TRUE(b.hidden_feasible(*h.best_config));
    // Later iterations should find feasible points reliably (the
    // feasibility model at work). When the DoE phase is already (near-)
    // saturated there is no headroom to beat it, so compare against a
    // high fixed bar rather than the DoE count itself.
    int early_ok = 0, late_ok = 0;
    for (std::size_t i = 0; i < 10; ++i)
        early_ok += h.observations[i].feasible ? 1 : 0;
    for (std::size_t i = h.size() - 10; i < h.size(); ++i)
        late_ok += h.observations[i].feasible ? 1 : 0;
    EXPECT_GE(late_ok, std::min(early_ok, 7));
}

TEST(Integration, BacoFindsFeasibleDesignsOnHpvm)
{
    const Benchmark& b = find_benchmark("PreEuler");
    TuningHistory h = run_method(b, Method::kBaco, 30, 13);
    ASSERT_TRUE(h.best_config.has_value());
    // Better than the default design.
    EXPECT_LT(h.best_value, b.true_cost(*b.default_config));
}

TEST(Integration, TrajectoriesAreMonotone)
{
    const Benchmark& b = find_benchmark("Asum_GPU");
    for (Method m : headline_methods()) {
        TuningHistory h = run_method(b, m, 20, 3);
        std::vector<double> t = h.best_trajectory();
        for (std::size_t i = 1; i < t.size(); ++i)
            EXPECT_LE(t[i], t[i - 1]) << method_name(m);
    }
}

TEST(Integration, SeedsReproduceExactly)
{
    const Benchmark& b = find_benchmark("K-means_GPU");
    TuningHistory a = run_method(b, Method::kBaco, 15, 77);
    TuningHistory c = run_method(b, Method::kBaco, 15, 77);
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(configs_equal(a.observations[i].config,
                                  c.observations[i].config));
        EXPECT_DOUBLE_EQ(a.observations[i].value, c.observations[i].value);
    }
}

TEST(Integration, SpaceVariantAblationChangesBehaviour)
{
    // The no-log-transform variant must build a space with the same shape
    // but different distances; both must run end to end.
    const Benchmark& b = find_benchmark("SpMM/cage12");
    SpaceVariant no_log;
    no_log.log_transforms = false;
    no_log.permutation_metric = PermutationMetric::kNaive;
    TuningHistory h = run_method(b, Method::kBaco, 20, 5, no_log);
    EXPECT_EQ(h.size(), 20u);
    EXPECT_TRUE(h.best_config.has_value());
}

TEST(Integration, BacoMinusMinusRunsOnSuite)
{
    const Benchmark& b = find_benchmark("SpMM/cage12");
    TuningHistory h = run_method(b, Method::kBacoMinusMinus, 20, 5);
    EXPECT_EQ(h.size(), 20u);
}

}  // namespace
}  // namespace baco::suite
