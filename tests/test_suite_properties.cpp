// Suite-wide parameterized property tests: invariants that must hold for
// every one of the 25 benchmark instances.

#include <gtest/gtest.h>

#include "core/chain_of_trees.hpp"
#include "suite/registry.hpp"

namespace baco::suite {
namespace {

std::vector<std::string>
all_names()
{
    std::vector<std::string> names;
    for (const Benchmark& b : all_benchmarks())
        names.push_back(b.name);
    return names;
}

class BenchmarkProperty : public ::testing::TestWithParam<std::string> {
 protected:
  const Benchmark& bench() { return find_benchmark(GetParam()); }
};

TEST_P(BenchmarkProperty, EvaluatorIsDeterministicGivenRngState)
{
    const Benchmark& b = bench();
    auto space = b.make_space(SpaceVariant{});
    RngEngine sample_rng(1);
    Configuration c = space->sample_unconstrained(sample_rng);
    RngEngine r1(7), r2(7);
    EvalResult a = b.evaluate(c, r1);
    EvalResult d = b.evaluate(c, r2);
    EXPECT_EQ(a.feasible, d.feasible);
    if (a.feasible) {
        EXPECT_DOUBLE_EQ(a.value, d.value);
    }
}

TEST_P(BenchmarkProperty, TrueCostPositiveOnFeasibleSamples)
{
    const Benchmark& b = bench();
    auto space = b.make_space(SpaceVariant{});
    RngEngine rng(2);
    int checked = 0;
    for (int i = 0; i < 100 && checked < 30; ++i) {
        auto c = space->sample_feasible(rng, 500);
        if (!c || !b.hidden_feasible(*c))
            continue;
        ++checked;
        EXPECT_GT(b.true_cost(*c), 0.0);
        EXPECT_TRUE(std::isfinite(b.true_cost(*c)));
    }
    EXPECT_GT(checked, 0);
}

TEST_P(BenchmarkProperty, EvaluateAgreesWithHiddenCheck)
{
    const Benchmark& b = bench();
    auto space = b.make_space(SpaceVariant{});
    RngEngine rng(3), noise(4);
    for (int i = 0; i < 40; ++i) {
        auto c = space->sample_feasible(rng, 500);
        if (!c)
            continue;
        EvalResult r = b.evaluate(*c, noise);
        EXPECT_EQ(r.feasible, b.hidden_feasible(*c));
    }
}

TEST_P(BenchmarkProperty, SpaceVariantsPreserveShape)
{
    const Benchmark& b = bench();
    SpaceVariant no_log;
    no_log.log_transforms = false;
    no_log.permutation_metric = PermutationMetric::kNaive;
    auto a = b.make_space(SpaceVariant{});
    auto v = b.make_space(no_log);
    ASSERT_EQ(a->num_params(), v->num_params());
    for (std::size_t i = 0; i < a->num_params(); ++i) {
        EXPECT_EQ(a->param(i).name(), v->param(i).name());
        EXPECT_EQ(a->param(i).kind(), v->param(i).kind());
        if (a->param(i).is_discrete()) {
            EXPECT_EQ(a->param(i).num_values(), v->param(i).num_values());
        }
    }
}

TEST_P(BenchmarkProperty, CotMembershipMatchesConstraints)
{
    const Benchmark& b = bench();
    auto space = b.make_space(SpaceVariant{});
    if (!space->has_constraints() || !space->is_fully_discrete())
        GTEST_SKIP() << "no tree-compatible known constraints";
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(5);
    for (int i = 0; i < 100; ++i) {
        Configuration c = space->sample_unconstrained(rng);
        EXPECT_EQ(cot.contains(c), space->satisfies(c));
    }
}

TEST_P(BenchmarkProperty, ReferenceCostIsAchievable)
{
    const Benchmark& b = bench();
    EXPECT_GT(b.reference_cost, 0.0);
    if (b.expert) {
        auto space = b.make_space(SpaceVariant{});
        EXPECT_TRUE(space->satisfies(*b.expert));
        EXPECT_TRUE(b.hidden_feasible(*b.expert));
        EXPECT_DOUBLE_EQ(b.reference_cost, b.true_cost(*b.expert));
    }
}

TEST_P(BenchmarkProperty, BudgetsFollowTable3Rule)
{
    const Benchmark& b = bench();
    EXPECT_GE(b.full_budget, 20);
    EXPECT_EQ(b.tiny_budget(), std::max(1, b.full_budget / 3));
    EXPECT_EQ(b.small_budget(), std::max(1, 2 * b.full_budget / 3));
    EXPECT_LE(b.doe_samples, b.tiny_budget() * 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkProperty, ::testing::ValuesIn(all_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

}  // namespace
}  // namespace baco::suite
