// Control for the negative-compile checks in
// tests/test_static_analysis.cmake: correct lock discipline over the
// annotated primitives. If THIS file fails to compile under
// -Werror=thread-safety-analysis the checker setup itself is broken,
// and the two negative cases prove nothing.

#include "core/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void
  set(int v)
  {
      baco::MutexLock lock(mutex_);
      value_ = v;
  }

  int
  get()
  {
      baco::MutexLock lock(mutex_);
      return value_;
  }

  void
  set_locked(int v) BACO_REQUIRES(mutex_)
  {
      value_ = v;
  }

  void
  update(int v)
  {
      baco::MutexLock lock(mutex_);
      set_locked(v);
  }

  void
  wait_nonzero()
  {
      baco::MutexLock lock(mutex_);
      while (value_ == 0)
          cv_.wait(mutex_);
  }

 private:
  baco::Mutex mutex_;
  baco::CondVar cv_;
  int value_ BACO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Guarded g;
    g.set(1);
    g.update(2);
    return g.get() == 2 ? 0 : 1;
}
