// Negative-compile case: calling a BACO_REQUIRES function without
// holding the required mutex. tests/test_static_analysis.cmake asserts
// this file FAILS to compile under clang -Werror=thread-safety-analysis.

#include "core/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void
  set_locked(int v) BACO_REQUIRES(mutex_)
  {
      value_ = v;
  }

  void
  set_unlocked(int v)
  {
      set_locked(v);  // BAD: mutex_ not held
  }

 private:
  baco::Mutex mutex_;
  int value_ BACO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Guarded g;
    g.set_unlocked(1);
    return 0;
}
