// Negative-compile case: reading a BACO_GUARDED_BY field without its
// mutex. tests/test_static_analysis.cmake asserts this file FAILS to
// compile under clang -Werror=thread-safety-analysis — if it ever
// compiles, the annotations have rotted into no-ops.

#include "core/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  int
  get_racy()
  {
      return value_;  // BAD: mutex_ not held
  }

 private:
  baco::Mutex mutex_;
  int value_ BACO_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int
main()
{
    Guarded g;
    return g.get_racy();
}
