// HPVM2FPGA substrate: estimator behaviour and benchmark structure.

#include <gtest/gtest.h>

#include "hpvm/benchmarks.hpp"
#include "hpvm/fpga_model.hpp"

namespace baco::hpvm {
namespace {

TEST(FpgaModel, UnrollSpeedsUpUntilPortLimit)
{
    const FpgaDesign& d = design("BFS");
    std::vector<bool> off(4, false);
    EstimateResult u0 = estimate(d, {0, 0}, {false}, {false});
    EstimateResult u2 = estimate(d, {2, 2}, {false}, {false});
    EstimateResult u3 = estimate(d, {3, 2}, {false}, {false});
    ASSERT_TRUE(u0.feasible && u2.feasible && u3.feasible);
    EXPECT_LT(u2.ms, u0.ms);
    EXPECT_LE(u3.ms, u2.ms * 1.05);  // diminishing returns near port limit
}

TEST(FpgaModel, ResourceOverflowIsInfeasible)
{
    const FpgaDesign& d = design("BFS");
    // 2^7 = 128 lanes on both stages blows the DSP budget.
    EstimateResult blown = estimate(d, {7, 7}, {false}, {false});
    EXPECT_FALSE(blown.feasible);
}

TEST(FpgaModel, FusionSavesTimeCostsBram)
{
    const FpgaDesign& d = design("PreEuler");
    EstimateResult unfused = estimate(d, {1, 1, 1}, {false, false},
                                      {false, false});
    EstimateResult fused = estimate(d, {1, 1, 1}, {true, true},
                                    {false, false});
    ASSERT_TRUE(unfused.feasible && fused.feasible);
    EXPECT_LT(fused.ms, unfused.ms);
}

TEST(FpgaModel, FusionPlusExtremeUnrollFailsEstimator)
{
    const FpgaDesign& d = design("PreEuler");
    // Unroll far past the port limit (>4x) on a fused stage: estimator
    // failure. The same unroll without fusion only wastes area.
    EstimateResult fused = estimate(d, {6, 0, 0}, {true, false},
                                    {false, false});
    EXPECT_FALSE(fused.feasible);
    EstimateResult moderate = estimate(d, {5, 0, 0}, {true, false},
                                       {false, false});
    EXPECT_TRUE(moderate.feasible);
}

TEST(FpgaModel, PrivatizationReducesStalls)
{
    const FpgaDesign& d = design("Audio");
    std::vector<bool> no_fuse{false, false};
    EstimateResult none = estimate(d, {1, 1, 1}, no_fuse,
                                   std::vector<bool>(10, false));
    EstimateResult all = estimate(d, {1, 1, 1}, no_fuse,
                                  std::vector<bool>(10, true));
    ASSERT_TRUE(none.feasible && all.feasible);
    EXPECT_LT(all.ms, none.ms);
}

TEST(HpvmBenchmarks, SuiteShapeMatchesTable3)
{
    std::vector<Benchmark> suite = hpvm_suite();
    ASSERT_EQ(suite.size(), 3u);

    auto space_of = [](const Benchmark& b) {
        return b.make_space(SpaceVariant{});
    };
    // BFS: 4 params, 256 dense configurations.
    EXPECT_EQ(space_of(suite[0])->num_params(), 4u);
    EXPECT_DOUBLE_EQ(space_of(suite[0])->dense_size(), 256.0);
    EXPECT_EQ(suite[0].full_budget, 20);
    // Audio: 15 params, ~8.4e5 dense.
    EXPECT_EQ(space_of(suite[1])->num_params(), 15u);
    EXPECT_NEAR(space_of(suite[1])->dense_size(), 884736.0, 1.0);
    EXPECT_EQ(suite[1].full_budget, 60);
    // PreEuler: 7 params, ~1.5e4 dense.
    EXPECT_EQ(space_of(suite[2])->num_params(), 7u);
    EXPECT_NEAR(space_of(suite[2])->dense_size(), 16000.0, 1.0);

    for (const Benchmark& b : suite) {
        // No known constraints; hidden constraints only (Table 3).
        EXPECT_FALSE(space_of(b)->has_constraints()) << b.name;
        EXPECT_TRUE(b.has_hidden_constraints) << b.name;
        // No expert configurations exist for HPVM2FPGA.
        EXPECT_FALSE(b.expert.has_value()) << b.name;
        ASSERT_TRUE(b.default_config.has_value()) << b.name;
        EXPECT_TRUE(b.hidden_feasible(*b.default_config)) << b.name;
        // The virtual-best reference is better than the default.
        EXPECT_LT(b.reference_cost, b.true_cost(*b.default_config)) << b.name;
        EXPECT_GT(b.reference_cost, 0.0) << b.name;
    }
}

TEST(HpvmBenchmarks, HiddenConstraintsBiteButLeaveRoom)
{
    for (const Benchmark& b : hpvm_suite()) {
        auto space = b.make_space(SpaceVariant{});
        RngEngine rng(5);
        int feasible = 0;
        const int n = 400;
        for (int i = 0; i < n; ++i)
            feasible += b.hidden_feasible(space->sample_unconstrained(rng))
                            ? 1
                            : 0;
        EXPECT_GT(feasible, n / 20) << b.name;
        EXPECT_LT(feasible, n) << b.name;
    }
}

TEST(HpvmBenchmarks, EvaluatorConsistentWithHiddenCheck)
{
    Benchmark b = make_hpvm_benchmark("BFS");
    auto space = b.make_space(SpaceVariant{});
    RngEngine rng(6);
    RngEngine noise(7);
    for (int i = 0; i < 100; ++i) {
        Configuration c = space->sample_unconstrained(rng);
        EvalResult r = b.evaluate(c, noise);
        EXPECT_EQ(r.feasible, b.hidden_feasible(c));
        if (r.feasible)
            EXPECT_GT(r.value, 0.0);
    }
}

TEST(HpvmBenchmarks, MostlyBooleanSpaces)
{
    // "The majority of the parameters are boolean" (paper Sec. 2).
    Benchmark audio = make_hpvm_benchmark("Audio");
    auto space = audio.make_space(SpaceVariant{});
    int booleans = 0;
    for (std::size_t i = 0; i < space->num_params(); ++i) {
        if (space->param(i).kind() == ParamKind::kCategorical &&
            space->param(i).num_values() == 2) {
            ++booleans;
        }
    }
    EXPECT_GT(booleans, static_cast<int>(space->num_params()) / 2);
}

}  // namespace
}  // namespace baco::hpvm
