// Decision tree and random forest behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "rf/random_forest.hpp"

namespace baco {
namespace {

TEST(DecisionTree, FitsAxisAlignedStep)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        double v = i / 50.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 5.0);
    }
    std::vector<std::size_t> idx(x.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    RngEngine rng(1);
    DecisionTree t;
    t.fit(x, y, idx, rng);
    EXPECT_NEAR(t.predict({0.2}), 1.0, 1e-9);
    EXPECT_NEAR(t.predict({0.8}), 5.0, 1e-9);
}

TEST(DecisionTree, PureNodeBecomesLeaf)
{
    std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}};
    std::vector<double> y{3.0, 3.0, 3.0};
    std::vector<std::size_t> idx{0, 1, 2};
    RngEngine rng(2);
    DecisionTree t;
    t.fit(x, y, idx, rng);
    EXPECT_EQ(t.num_nodes(), 1u);
    EXPECT_DOUBLE_EQ(t.predict({5.0}), 3.0);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    TreeOptions opt;
    opt.max_depth = 1;
    DecisionTree t(opt);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 32; ++i) {
        x.push_back({static_cast<double>(i)});
        y.push_back(static_cast<double>(i % 7));
    }
    std::vector<std::size_t> idx(x.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    RngEngine rng(3);
    t.fit(x, y, idx, rng);
    // Depth 1 -> at most 3 nodes (root + two leaves).
    EXPECT_LE(t.num_nodes(), 3u);
}

TEST(RandomForest, RegressionOnSeparableData)
{
    ForestOptions opt;
    opt.task = TreeTask::kRegression;
    opt.num_trees = 30;
    RandomForest rf(opt);
    RngEngine rng(4);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        double a = rng.uniform(), b = rng.uniform();
        x.push_back({a, b});
        y.push_back(3.0 * a + b);
    }
    rf.fit(x, y, rng);
    EXPECT_NEAR(rf.predict({0.5, 0.5}), 2.0, 0.3);
    EXPECT_NEAR(rf.predict({0.9, 0.1}), 2.8, 0.4);
}

TEST(RandomForest, ClassifierProbabilities)
{
    ForestOptions opt;
    opt.task = TreeTask::kClassification;
    opt.num_trees = 40;
    RandomForest rf(opt);
    RngEngine rng(5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        double a = rng.uniform();
        x.push_back({a});
        y.push_back(a > 0.6 ? 1.0 : 0.0);
    }
    rf.fit(x, y, rng);
    EXPECT_GT(rf.predict({0.9}), 0.8);
    EXPECT_LT(rf.predict({0.1}), 0.2);
    // Probabilities stay in [0, 1].
    for (double v : {0.0, 0.3, 0.59, 0.61, 1.0}) {
        double p = rf.predict({v});
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(RandomForest, VarianceSmallOnCleanDataLargeOffDistribution)
{
    ForestOptions opt;
    opt.num_trees = 40;
    RandomForest rf(opt);
    RngEngine rng(6);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        double a = rng.uniform(0.0, 0.5);
        x.push_back({a});
        y.push_back(a);
    }
    rf.fit(x, y, rng);
    ForestPrediction in_dist = rf.predict_with_variance({0.25});
    EXPECT_GE(in_dist.var, 0.0);
    EXPECT_NEAR(in_dist.mean, 0.25, 0.1);
}

TEST(RandomForest, DeterministicGivenSeed)
{
    auto build = [](std::uint64_t seed) {
        ForestOptions opt;
        opt.num_trees = 10;
        RandomForest rf(opt);
        RngEngine rng(seed);
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        RngEngine data_rng(99);
        for (int i = 0; i < 60; ++i) {
            double a = data_rng.uniform(), b = data_rng.uniform();
            x.push_back({a, b});
            y.push_back(a - b);
        }
        rf.fit(x, y, rng);
        return rf.predict({0.4, 0.7});
    };
    EXPECT_DOUBLE_EQ(build(7), build(7));
    // Different forest seeds typically give different ensembles.
    EXPECT_NE(build(7), build(8));
}

TEST(RandomForest, ThrowsOnEmptyOrMismatched)
{
    RandomForest rf;
    RngEngine rng(9);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    EXPECT_THROW(rf.fit(x, y, rng), std::runtime_error);
    x.push_back({1.0});
    EXPECT_THROW(rf.fit(x, y, rng), std::runtime_error);
}

}  // namespace
}  // namespace baco
