// Baseline autotuners: constraint compliance, budgets, basic effectiveness.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/opentuner_like.hpp"
#include "baselines/random_search.hpp"
#include "baselines/ytopt_like.hpp"

namespace baco {
namespace {

SearchSpace
space_with_constraints()
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2, 4, 8, 16, 32}, true);
    s.add_ordinal("b", {1, 2, 4, 8, 16, 32}, true);
    s.add_categorical("c", {"x", "y", "z"});
    s.add_constraint("a >= b");
    return s;
}

EvalResult
smooth_eval(const Configuration& c, RngEngine&)
{
    double a = static_cast<double>(as_int(c[0]));
    double b = static_cast<double>(as_int(c[1]));
    double cat = as_int(c[2]) == 2 ? 0.0 : 0.7;
    double v = 1.0 + std::abs(std::log2(a) - 3.0) +
               std::abs(std::log2(b) - 1.0) + cat;
    return EvalResult{v, true};
}

TEST(UniformSampling, RespectsBudgetAndConstraints)
{
    SearchSpace s = space_with_constraints();
    RandomSearchOptions opt;
    opt.budget = 40;
    opt.seed = 1;
    TuningHistory h = run_uniform_sampling(s, smooth_eval, opt);
    EXPECT_EQ(h.size(), 40u);
    for (const Observation& o : h.observations)
        EXPECT_TRUE(s.satisfies(o.config));
}

TEST(UniformSampling, IsUniformOverFeasibleRegion)
{
    // a >= b over {1,2} x {1,2}: feasible = (1,1),(2,1),(2,2).
    SearchSpace s;
    s.add_ordinal("a", {1, 2});
    s.add_ordinal("b", {1, 2});
    s.add_constraint("a >= b");
    RandomSearchOptions opt;
    opt.budget = 6000;
    opt.seed = 2;
    int a1b1 = 0;
    TuningHistory h = run_uniform_sampling(
        s,
        [&](const Configuration& c, RngEngine&) {
            if (as_int(c[0]) == 1 && as_int(c[1]) == 1)
                ++a1b1;
            return EvalResult{1.0, true};
        },
        opt);
    EXPECT_NEAR(a1b1 / 6000.0, 1.0 / 3.0, 0.03);
}

TEST(CotSampling, BiasTowardSparseSubtrees)
{
    // Same space: under the biased root-to-leaf walk, a=1 (which owns one
    // leaf) is sampled with probability 1/2 instead of 1/3.
    SearchSpace s;
    s.add_ordinal("a", {1, 2});
    s.add_ordinal("b", {1, 2});
    s.add_constraint("a >= b");
    RandomSearchOptions opt;
    opt.budget = 6000;
    opt.seed = 3;
    int a1 = 0;
    run_cot_sampling(
        s,
        [&](const Configuration& c, RngEngine&) {
            if (as_int(c[0]) == 1)
                ++a1;
            return EvalResult{1.0, true};
        },
        opt);
    EXPECT_NEAR(a1 / 6000.0, 0.5, 0.03);
}

TEST(OpenTunerLike, RespectsConstraintsAndImproves)
{
    SearchSpace s = space_with_constraints();
    OpenTunerLike::Options opt;
    opt.budget = 60;
    opt.seed = 4;
    OpenTunerLike tuner(s, opt);
    TuningHistory h = tuner.run(smooth_eval);
    EXPECT_EQ(h.size(), 60u);
    for (const Observation& o : h.observations)
        EXPECT_TRUE(s.satisfies(o.config));
    // Optimum value is 1.0; an ensemble search with 60 evals on a 108-point
    // dense space should land close.
    EXPECT_LE(h.best_value, 1.8);
}

TEST(OpenTunerLike, BeatsUniformOnAverage)
{
    SearchSpace s = space_with_constraints();
    double ot_sum = 0.0, uni_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        OpenTunerLike::Options oopt;
        oopt.budget = 25;
        oopt.seed = seed;
        ot_sum += OpenTunerLike(s, oopt).run(smooth_eval).best_value;
        RandomSearchOptions ropt;
        ropt.budget = 25;
        ropt.seed = seed;
        uni_sum += run_uniform_sampling(s, smooth_eval, ropt).best_value;
    }
    EXPECT_LE(ot_sum, uni_sum + 1.0);
}

TEST(OpenTunerLike, HandlesHiddenConstraintsWithoutModel)
{
    SearchSpace s = space_with_constraints();
    BlackBoxFn eval = [](const Configuration& c, RngEngine& rng) {
        if (as_int(c[2]) == 0)
            return EvalResult::infeasible();
        return smooth_eval(c, rng);
    };
    OpenTunerLike::Options opt;
    opt.budget = 40;
    opt.seed = 5;
    OpenTunerLike tuner(s, opt);
    TuningHistory h = tuner.run(eval);
    ASSERT_TRUE(h.best_config.has_value());
    EXPECT_NE(as_int((*h.best_config)[2]), 0);
}

TEST(YtoptLike, RfModeRespectsKnownConstraints)
{
    SearchSpace s = space_with_constraints();
    YtoptLike::Options opt;
    opt.budget = 40;
    opt.seed = 6;
    YtoptLike tuner(s, opt);
    TuningHistory h = tuner.run(smooth_eval);
    EXPECT_EQ(h.size(), 40u);
    for (const Observation& o : h.observations)
        EXPECT_TRUE(s.satisfies(o.config));
    EXPECT_LE(h.best_value, 2.2);
}

TEST(YtoptLike, PenalizesInfeasibleInsteadOfModelling)
{
    SearchSpace s = space_with_constraints();
    BlackBoxFn eval = [](const Configuration& c, RngEngine& rng) {
        if (as_int(c[2]) == 1)
            return EvalResult::infeasible();
        return smooth_eval(c, rng);
    };
    YtoptLike::Options opt;
    opt.budget = 40;
    opt.seed = 7;
    YtoptLike tuner(s, opt);
    TuningHistory h = tuner.run(eval);
    ASSERT_TRUE(h.best_config.has_value());
    EXPECT_NE(as_int((*h.best_config)[1]), -1);  // sanity
}

TEST(YtoptLike, GpModeIgnoresKnownConstraints)
{
    // Matching the real tool: the GP mode samples the dense space, so some
    // evaluated configurations may violate known constraints.
    SearchSpace s = space_with_constraints();
    YtoptLike::Options opt;
    opt.budget = 60;
    opt.seed = 8;
    opt.surrogate = YtoptLike::Surrogate::kGaussianProcess;
    YtoptLike tuner(s, opt);
    TuningHistory h = tuner.run(smooth_eval);
    EXPECT_EQ(h.size(), 60u);
    bool any_violation = false;
    for (const Observation& o : h.observations)
        any_violation |= !s.satisfies(o.config);
    EXPECT_TRUE(any_violation);
}

}  // namespace
}  // namespace baco
