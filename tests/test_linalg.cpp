// Unit and property tests for the dense linear algebra substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"
#include "linalg/stats.hpp"

namespace baco {
namespace {

TEST(Matrix, IdentityAndTranspose)
{
    Matrix m = Matrix::identity(3);
    EXPECT_EQ(m(0, 0), 1.0);
    EXPECT_EQ(m(0, 1), 0.0);

    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix t = a.transposed();
    ASSERT_EQ(t.rows(), 3u);
    ASSERT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), 6.0);
    EXPECT_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MatVecMatchesManual)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 3; a(1, 1) = 4;
    std::vector<double> x{5, 6};
    std::vector<double> y = mat_vec(a, x);
    EXPECT_DOUBLE_EQ(y[0], 17.0);
    EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, MatMatAgainstIdentity)
{
    RngEngine rng(1);
    Matrix a(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            a(i, j) = rng.uniform(-1, 1);
    Matrix prod = mat_mat(a, Matrix::identity(4));
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(prod(i, j), a(i, j));
}

TEST(VectorOps, DotAxpyNorm)
{
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{4, 5, 6};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    std::vector<double> c = axpy(a, 2.0, b);
    EXPECT_DOUBLE_EQ(c[2], 15.0);
    EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
}

TEST(Cholesky, FactorizesKnownSpd)
{
    // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
    Matrix a(2, 2);
    a(0, 0) = 4; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 3;
    auto f = cholesky(a);
    ASSERT_TRUE(f.has_value());
    EXPECT_NEAR(f->lower()(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(f->lower()(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(f->lower()(1, 1), std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(f->log_det(), std::log(4 * 3 - 2 * 2), 1e-12);
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
    EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, JitterRecoversNearSingular)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 1;  // rank 1
    CholeskyFactor f = cholesky_with_jitter(a);
    // Solving should not blow up.
    std::vector<double> x = f.solve({1.0, 1.0});
    EXPECT_TRUE(std::isfinite(x[0]));
    EXPECT_TRUE(std::isfinite(x[1]));
}

/** Property: random SPD solves satisfy A x = b to high accuracy. */
class CholeskySolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySolveProperty, SolvesRandomSpdSystems)
{
    int n = GetParam();
    RngEngine rng(static_cast<std::uint64_t>(n));
    // A = B B^T + n*I is SPD.
    Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            b(i, j) = rng.uniform(-1, 1);
    Matrix a = mat_mat(b, b.transposed());
    for (std::size_t i = 0; i < a.rows(); ++i)
        a(i, i) += n;

    std::vector<double> rhs(static_cast<std::size_t>(n));
    for (double& v : rhs)
        v = rng.uniform(-10, 10);

    auto f = cholesky(a);
    ASSERT_TRUE(f.has_value());
    std::vector<double> x = f->solve(rhs);
    std::vector<double> back = mat_vec(a, x);
    for (std::size_t i = 0; i < rhs.size(); ++i)
        EXPECT_NEAR(back[i], rhs[i], 1e-8 * n);

    // Inverse consistency: A * A^{-1} = I.
    Matrix inv = f->inverse();
    Matrix prod = mat_mat(a, inv);
    for (std::size_t i = 0; i < prod.rows(); ++i)
        for (std::size_t j = 0; j < prod.cols(); ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Stats, BasicMoments)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(variance(v), 2.5);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_NEAR(geometric_mean({1, 100}), 10.0, 1e-12);
    EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Stats, NormalCdfPdf)
{
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
    // Symmetry.
    EXPECT_NEAR(normal_cdf(-1.3) + normal_cdf(1.3), 1.0, 1e-12);
}

TEST(Stats, StandardizerRoundTrip)
{
    Standardizer s;
    std::vector<double> v{10, 20, 30};
    s.fit(v);
    for (double x : v)
        EXPECT_NEAR(s.inverse(s.transform(x)), x, 1e-12);
    EXPECT_NEAR(s.transform(20.0), 0.0, 1e-12);
    // Degenerate scale falls back to 1 instead of dividing by ~0.
    Standardizer d;
    d.fit({5.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(d.scale(), 1.0);
}

}  // namespace
}  // namespace baco
