// Property tests for the incremental Cholesky append path: append-updated
// factors must agree with from-scratch factorization — including log_det
// and solves — on well-conditioned, near-singular and semimetric-induced
// slightly-indefinite matrices, across repeated append chains.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rng.hpp"

namespace baco {
namespace {

/** A = B B^T + ridge*I over [-1,1] uniform B: SPD with conditioning set
 *  by the ridge. */
Matrix
random_spd(std::size_t n, double ridge, RngEngine& rng)
{
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.uniform(-1, 1);
    Matrix a = mat_mat(b, b.transposed());
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += ridge;
    return a;
}

/** Leading k x k block of a. */
Matrix
leading_block(const Matrix& a, std::size_t k)
{
    Matrix b(k, k);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
            b(i, j) = a(i, j);
    return b;
}

/** Row r of a, restricted to the first k columns. */
std::vector<double>
cross_row(const Matrix& a, std::size_t r, std::size_t k)
{
    std::vector<double> v(k);
    for (std::size_t j = 0; j < k; ++j)
        v[j] = a(r, j);
    return v;
}

void
expect_factors_match(const CholeskyFactor& got, const CholeskyFactor& want,
                     double tol)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        for (std::size_t j = 0; j <= i; ++j)
            EXPECT_NEAR(got.lower()(i, j), want.lower()(i, j), tol)
                << "entry (" << i << ", " << j << ")";
}

TEST(CholeskyAppend, SingleAppendMatchesScratch)
{
    RngEngine rng(7);
    Matrix a = random_spd(12, 12.0, rng);
    auto scratch = cholesky(a);
    ASSERT_TRUE(scratch.has_value());

    auto grown = cholesky(leading_block(a, 11));
    ASSERT_TRUE(grown.has_value());
    ASSERT_TRUE(grown->append(cross_row(a, 11, 11), a(11, 11)));

    // The appended row runs the same recurrence as the scratch
    // factorization's last row, so agreement is essentially exact.
    expect_factors_match(*grown, *scratch, 1e-12);
    EXPECT_NEAR(grown->log_det(), scratch->log_det(), 1e-10);
}

class CholeskyAppendChain : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyAppendChain, RepeatedAppendsMatchScratch)
{
    // Chains of 1..64 appended rows on top of a 2x2 base.
    std::size_t appends = static_cast<std::size_t>(GetParam());
    std::size_t n = 2 + appends;
    RngEngine rng(static_cast<std::uint64_t>(appends));
    Matrix a = random_spd(n, static_cast<double>(n), rng);

    auto grown = cholesky(leading_block(a, 2));
    ASSERT_TRUE(grown.has_value());
    for (std::size_t k = 2; k < n; ++k)
        ASSERT_TRUE(grown->append(cross_row(a, k, k), a(k, k)))
            << "append " << k;

    auto scratch = cholesky(a);
    ASSERT_TRUE(scratch.has_value());
    expect_factors_match(*grown, *scratch, 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(grown->log_det(), scratch->log_det(),
                1e-9 * static_cast<double>(n));

    // Solves through the grown factor reconstruct A x = b.
    std::vector<double> rhs(n);
    for (double& v : rhs)
        v = rng.uniform(-10, 10);
    std::vector<double> x = grown->solve(rhs);
    std::vector<double> back = mat_vec(a, x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(back[i], rhs[i], 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Chains, CholeskyAppendChain,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(CholeskyAppend, BlockAppendMatchesScratch)
{
    RngEngine rng(11);
    for (std::size_t m : {1u, 2u, 4u, 7u}) {
        std::size_t base = 9;
        std::size_t n = base + m;
        Matrix a = random_spd(n, static_cast<double>(n), rng);

        Matrix cross(m, base);
        Matrix corner(m, m);
        for (std::size_t r = 0; r < m; ++r) {
            for (std::size_t j = 0; j < base; ++j)
                cross(r, j) = a(base + r, j);
            for (std::size_t c = 0; c < m; ++c)
                corner(r, c) = a(base + r, base + c);
        }

        auto grown = cholesky(leading_block(a, base));
        ASSERT_TRUE(grown.has_value());
        ASSERT_TRUE(grown->append_block(cross, corner)) << "m = " << m;

        auto scratch = cholesky(a);
        ASSERT_TRUE(scratch.has_value());
        // The Schur block is accumulated in a different order than the
        // scratch recurrence, so agreement is tight but not bitwise.
        expect_factors_match(*grown, *scratch, 1e-9);
        EXPECT_NEAR(grown->log_det(), scratch->log_det(), 1e-9);
    }
}

TEST(CholeskyAppend, ShrinkRestoresExactPrefix)
{
    RngEngine rng(3);
    Matrix a = random_spd(10, 10.0, rng);
    auto base = cholesky(leading_block(a, 6));
    ASSERT_TRUE(base.has_value());
    CholeskyFactor grown = *base;
    for (std::size_t k = 6; k < 10; ++k)
        ASSERT_TRUE(grown.append(cross_row(a, k, k), a(k, k)));
    grown.shrink(6);
    ASSERT_EQ(grown.size(), 6u);
    // Appends never touch the leading block, so shrink is exact — not
    // merely within tolerance.
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            EXPECT_EQ(grown.lower()(i, j), base->lower()(i, j));
}

TEST(CholeskyAppend, RejectsNonSpdBorderAndLeavesFactorIntact)
{
    RngEngine rng(5);
    Matrix a = random_spd(8, 8.0, rng);
    auto f = cholesky(a);
    ASSERT_TRUE(f.has_value());
    Matrix before = f->lower();

    // Duplicating an existing row makes the bordered matrix exactly
    // singular: the Schur complement is ~0 and the append must refuse.
    std::vector<double> dup = cross_row(a, 3, 8);
    EXPECT_FALSE(f->append(dup, a(3, 3)));
    ASSERT_EQ(f->size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j <= i; ++j)
            EXPECT_EQ(f->lower()(i, j), before(i, j));

    // Same through the block path.
    Matrix cross(1, 8);
    Matrix corner(1, 1);
    for (std::size_t j = 0; j < 8; ++j)
        cross(0, j) = dup[j];
    corner(0, 0) = a(3, 3);
    EXPECT_FALSE(f->append_block(cross, corner));
    EXPECT_EQ(f->size(), 8u);
}

TEST(CholeskyAppend, NearSingularChainStaysAccurate)
{
    // Low-rank + tiny ridge: near-singular but factorizable. The append
    // chain must either track the scratch factor or refuse — silently
    // diverging is the failure mode this pins.
    RngEngine rng(13);
    std::size_t n = 10, r = 4;
    Matrix b(n, r);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < r; ++j)
            b(i, j) = rng.uniform(-1, 1);
    Matrix a = mat_mat(b, b.transposed());
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += 1e-6;

    auto scratch = cholesky(a);
    if (!scratch.has_value())
        GTEST_SKIP() << "matrix not factorizable at this seed";
    auto grown = cholesky(leading_block(a, r));
    ASSERT_TRUE(grown.has_value());
    bool all_ok = true;
    for (std::size_t k = r; k < n && all_ok; ++k)
        all_ok = grown->append(cross_row(a, k, k), a(k, k));
    if (!all_ok)
        SUCCEED();  // refusing a non-safely-positive pivot is correct
    else
        expect_factors_match(*grown, *scratch, 1e-6);
}

TEST(CholeskyAppend, JitteredFactorExtendsConsistently)
{
    // Semimetric-style slightly-indefinite matrix: a Matern kernel over
    // distances that violate the triangle inequality can have a small
    // negative eigenvalue. cholesky() must refuse, cholesky_with_jitter
    // must rescue it and report the applied shift — and appending a row
    // whose diagonal carries the *same* shift must agree with the
    // from-scratch jittered factorization (the GpModel::extend contract).
    // Three points with d(0,1) = d(1,2) = 0.1 but d(0,2) = 0.5: the
    // triangle inequality fails badly, and the Matern-5/2 Gram matrix
    // picks up a negative eigenvalue (det of the symmetric 2x2 block
    // (1 + k02) - 2*k01^2 < 0).
    std::size_t n = 3;
    Matrix d(n, n, 0.0);
    d(0, 1) = d(1, 0) = 0.1;
    d(1, 2) = d(2, 1) = 0.1;
    d(0, 2) = d(2, 0) = 0.5;
    auto matern = [](double r) {
        double a = std::sqrt(5.0) * r;
        return (1.0 + a + 5.0 * r * r / 3.0) * std::exp(-a);
    };
    Matrix kmat(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            kmat(i, j) = i == j ? 1.0 : matern(d(i, j));

    ASSERT_FALSE(cholesky(kmat).has_value())
        << "construction failed to produce an indefinite matrix";

    double jitter = 0.0;
    CholeskyFactor full = cholesky_with_jitter(kmat, 1e-10, 16, &jitter);
    EXPECT_GT(jitter, 0.0);

    // Factor the jittered leading block directly, then append the last
    // row with the reported shift on its diagonal.
    Matrix lead = leading_block(kmat, n - 1);
    for (std::size_t i = 0; i < n - 1; ++i)
        lead(i, i) += jitter;
    auto grown = cholesky(lead);
    ASSERT_TRUE(grown.has_value());
    ASSERT_TRUE(
        grown->append(cross_row(kmat, n - 1, n - 1), kmat(n - 1, n - 1) + jitter));
    expect_factors_match(*grown, full, 1e-10);
    EXPECT_NEAR(grown->log_det(), full.log_det(), 1e-10);
}

TEST(CholeskyWithJitter, ReportsZeroShiftWhenSpd)
{
    RngEngine rng(2);
    Matrix a = random_spd(5, 5.0, rng);
    double jitter = 123.0;
    CholeskyFactor f = cholesky_with_jitter(a, 1e-10, 16, &jitter);
    EXPECT_EQ(jitter, 0.0);
    EXPECT_EQ(f.size(), 5u);
}

TEST(Matrix, ResizePreservingKeepsOverlap)
{
    Matrix m(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            m(i, j) = static_cast<double>(10 * i + j);
    m.resize_preserving(5, 5);
    ASSERT_EQ(m.rows(), 5u);
    EXPECT_EQ(m(2, 2), 22.0);
    EXPECT_EQ(m(4, 4), 0.0);
    m.resize_preserving(2, 2);
    ASSERT_EQ(m.cols(), 2u);
    EXPECT_EQ(m(1, 1), 11.0);
    EXPECT_EQ(m(1, 0), 10.0);
}

}  // namespace
}  // namespace baco
