// TACO cost model and benchmark definitions: landscape sanity, constraint
// structure, expert/default quality.

#include <gtest/gtest.h>

#include "core/chain_of_trees.hpp"
#include "taco/benchmarks.hpp"

namespace baco::taco {
namespace {

TacoSchedule
base_schedule(TacoKernel k)
{
    TacoSchedule s;
    s.chunk = 256;
    s.chunk2 = 64;
    s.unroll = 4;
    s.dynamic_sched = false;
    s.omp_chunk = 8;
    s.threads = 32;
    int m = kernel_perm_size(k);
    s.perm.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i)
        s.perm[static_cast<std::size_t>(i)] = i;
    return s;
}

TEST(TacoCostModel, PositiveAndDeterministic)
{
    for (TacoKernel k : {TacoKernel::kSpMV, TacoKernel::kSpMM,
                         TacoKernel::kSDDMM, TacoKernel::kTTV,
                         TacoKernel::kMTTKRP}) {
        const TensorProfile& t = profile(k == TacoKernel::kMTTKRP ? "uber"
                                         : k == TacoKernel::kTTV ? "uber3"
                                                                 : "scircuit");
        TacoSchedule s = base_schedule(k);
        double a = taco_cost_ms(k, t, s);
        double b = taco_cost_ms(k, t, s);
        EXPECT_GT(a, 0.0);
        EXPECT_DOUBLE_EQ(a, b);
    }
}

TEST(TacoCostModel, DiscordantOrdersArePunished)
{
    const TensorProfile& t = profile("cage12");
    TacoSchedule good = base_schedule(TacoKernel::kSpMV);
    TacoSchedule bad = good;
    // Fully reversed loop order violates every concordance chain.
    bad.perm = {4, 3, 2, 1, 0};
    EXPECT_FALSE(perm_concordant(TacoKernel::kSpMV, bad.perm));
    double g = taco_cost_ms(TacoKernel::kSpMV, t, good);
    double b = taco_cost_ms(TacoKernel::kSpMV, t, bad);
    // "Several orders of magnitude" slower (paper RQ4 on SpMV).
    EXPECT_GT(b / g, 50.0);
}

TEST(TacoCostModel, IdealPermIsConcordantAndBest)
{
    for (const char* name : {"scircuit", "email-Enron", "laminar_duct3D"}) {
        const TensorProfile& t = profile(name);
        Permutation ideal = ideal_perm(TacoKernel::kSpMM, t);
        EXPECT_TRUE(perm_concordant(TacoKernel::kSpMM, ideal));
        TacoSchedule s = base_schedule(TacoKernel::kSpMM);
        double with_identity = taco_cost_ms(TacoKernel::kSpMM, t, s);
        s.perm = ideal;
        double with_ideal = taco_cost_ms(TacoKernel::kSpMM, t, s);
        EXPECT_LT(with_ideal, with_identity);
        // The gap is the ~1.1x the paper attributes to loop reordering.
        EXPECT_LT(with_identity / with_ideal, 1.5);
    }
}

TEST(TacoCostModel, TileSizeHasInteriorOptimum)
{
    const TensorProfile& t = profile("filter3D");
    TacoSchedule s = base_schedule(TacoKernel::kSpMM);
    double tiny, mid, huge;
    s.chunk = 8;
    tiny = taco_cost_ms(TacoKernel::kSpMM, t, s);
    s.chunk = 256;
    mid = taco_cost_ms(TacoKernel::kSpMM, t, s);
    s.chunk = 4096;
    s.chunk2 = 1024;
    huge = taco_cost_ms(TacoKernel::kSpMM, t, s);
    EXPECT_LT(mid, tiny);
    EXPECT_LT(mid, huge);
}

TEST(TacoCostModel, SkewedDatasetsPreferDynamicScheduling)
{
    // With identical schedules, the advantage of dynamic over static
    // scheduling must be much larger on a skewed matrix than a regular one
    // (the dataset-dependent trade-off the categorical parameter encodes).
    auto ratio = [](const TensorProfile& t) {
        TacoSchedule s = base_schedule(TacoKernel::kSDDMM);
        s.omp_chunk = 256;  // coarse quanta expose imbalance under static
        s.dynamic_sched = false;
        double stat = taco_cost_ms(TacoKernel::kSDDMM, t, s);
        s.dynamic_sched = true;
        double dyn = taco_cost_ms(TacoKernel::kSDDMM, t, s);
        return stat / dyn;
    };
    double skewed_gain = ratio(profile("email-Enron"));
    double regular_gain = ratio(profile("Goodwin_040"));
    EXPECT_GT(skewed_gain, 1.0);
    EXPECT_GT(skewed_gain, 1.5 * regular_gain);

    // And fine-grained dynamic dispatch on a huge regular matrix is pure
    // overhead versus fine-grained static.
    const TensorProfile& big = profile("scircuit");
    TacoSchedule s = base_schedule(TacoKernel::kSDDMM);
    s.chunk = 8;
    s.omp_chunk = 1;
    s.dynamic_sched = true;
    double dyn_fine = taco_cost_ms(TacoKernel::kSDDMM, big, s);
    s.dynamic_sched = false;
    double stat_fine = taco_cost_ms(TacoKernel::kSDDMM, big, s);
    EXPECT_LT(stat_fine, dyn_fine);
}

TEST(TacoCostModel, TtvHiddenConstraintTriggersOnWorkspace)
{
    const TensorProfile& t = profile("facebook");
    TacoSchedule s = base_schedule(TacoKernel::kTTV);
    s.chunk = 4096;
    s.threads = 32;  // 131072 > 65536
    EXPECT_FALSE(taco_hidden_feasible(TacoKernel::kTTV, t, s));
    s.chunk = 1024;
    EXPECT_TRUE(taco_hidden_feasible(TacoKernel::kTTV, t, s));
    // Other kernels have no hidden constraints.
    EXPECT_TRUE(taco_hidden_feasible(TacoKernel::kSpMM, t, s));
}

TEST(TacoBenchmarks, SuiteHasFifteenInstances)
{
    std::vector<Benchmark> suite = taco_suite();
    EXPECT_EQ(suite.size(), 15u);
    for (const Benchmark& b : suite) {
        EXPECT_EQ(b.framework, "TACO");
        EXPECT_GE(b.full_budget, 60);
    }
}

TEST(TacoBenchmarks, SpacesMatchTable3Dims)
{
    // SpMV and TTV: 7 parameters; SpMM/SDDMM/MTTKRP: 6.
    auto dims = [](const Benchmark& b) {
        return b.make_space(SpaceVariant{})->num_params();
    };
    EXPECT_EQ(dims(make_taco_benchmark(TacoKernel::kSpMV, "cage12")), 7u);
    EXPECT_EQ(dims(make_taco_benchmark(TacoKernel::kTTV, "uber3")), 7u);
    EXPECT_EQ(dims(make_taco_benchmark(TacoKernel::kSpMM, "scircuit")), 6u);
    EXPECT_EQ(dims(make_taco_benchmark(TacoKernel::kSDDMM, "ACTIVSg10K")), 6u);
    EXPECT_EQ(dims(make_taco_benchmark(TacoKernel::kMTTKRP, "nips")), 6u);
}

TEST(TacoBenchmarks, ConstraintStructureMatchesPaper)
{
    // SpMV is the one benchmark without known constraints (RQ4).
    Benchmark spmv = make_taco_benchmark(TacoKernel::kSpMV, "cage12");
    EXPECT_FALSE(spmv.make_space(SpaceVariant{})->has_constraints());
    // The others declare known constraints; only TTV has hidden ones.
    Benchmark spmm = make_taco_benchmark(TacoKernel::kSpMM, "scircuit");
    EXPECT_TRUE(spmm.make_space(SpaceVariant{})->has_constraints());
    EXPECT_FALSE(spmm.has_hidden_constraints);
    Benchmark ttv = make_taco_benchmark(TacoKernel::kTTV, "facebook");
    EXPECT_TRUE(ttv.has_hidden_constraints);
}

TEST(TacoBenchmarks, ConcordanceConstraintPrunesPermutations)
{
    Benchmark spmm = make_taco_benchmark(TacoKernel::kSpMM, "scircuit");
    auto space = spmm.make_space(SpaceVariant{});
    ChainOfTrees cot = ChainOfTrees::build(*space);
    // Valid orders of [i0,i1,k0,k1,u]: 3 linear extensions x 5 slots = 15.
    std::size_t perm_idx = space->index_of("loop_perm");
    std::size_t tree = cot.tree_of(perm_idx);
    ASSERT_NE(tree, ChainOfTrees::kNoTree);
    EXPECT_EQ(cot.tree_leaves(tree), 15u);
}

TEST(TacoBenchmarks, ExpertUsesDefaultLoopOrderAndBeatsDefault)
{
    for (const Benchmark& b : taco_suite()) {
        ASSERT_TRUE(b.expert.has_value()) << b.name;
        ASSERT_TRUE(b.default_config.has_value()) << b.name;
        auto space = b.make_space(SpaceVariant{});
        EXPECT_TRUE(space->satisfies(*b.expert)) << b.name;
        EXPECT_TRUE(space->satisfies(*b.default_config)) << b.name;
        EXPECT_TRUE(b.hidden_feasible(*b.expert)) << b.name;
        EXPECT_TRUE(b.hidden_feasible(*b.default_config)) << b.name;
        // Expert keeps the identity (default) loop order...
        const Permutation& perm = as_permutation(b.expert->back());
        for (std::size_t i = 0; i < perm.size(); ++i)
            EXPECT_EQ(perm[i], static_cast<int>(i)) << b.name;
        // ...and is meaningfully better than the default configuration.
        EXPECT_LT(b.true_cost(*b.expert),
                  b.true_cost(*b.default_config) * 0.95)
            << b.name;
        EXPECT_DOUBLE_EQ(b.reference_cost, b.true_cost(*b.expert));
    }
}

TEST(TacoBenchmarks, EvaluatorAddsBoundedNoise)
{
    Benchmark b = make_taco_benchmark(TacoKernel::kSpMM, "cage12");
    RngEngine rng(1);
    double truth = b.true_cost(*b.expert);
    for (int i = 0; i < 20; ++i) {
        EvalResult r = b.evaluate(*b.expert, rng);
        ASSERT_TRUE(r.feasible);
        EXPECT_NEAR(r.value, truth, truth * 0.25);
        EXPECT_GT(r.value, 0.0);
    }
}

TEST(TacoBenchmarks, PermutationExplorationCanBeatExpert)
{
    // The best concordant order should beat the expert's identity order by
    // roughly the paper's ~1.1x.
    Benchmark b = make_taco_benchmark(TacoKernel::kSpMM, "laminar_duct3D");
    Configuration best = *b.expert;
    const TensorProfile& t = profile("laminar_duct3D");
    best.back() = ideal_perm(TacoKernel::kSpMM, t);
    double gain = b.true_cost(*b.expert) / b.true_cost(best);
    EXPECT_GT(gain, 1.02);
    EXPECT_LT(gain, 1.5);
}

}  // namespace
}  // namespace baco::taco
