// Multi-start local search: improvement, feasibility, ablation mode.

#include <gtest/gtest.h>

#include <cmath>

#include "core/local_search.hpp"

namespace baco {
namespace {

SearchSpace
grid_space()
{
    SearchSpace s;
    s.add_ordinal("a", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
    s.add_ordinal("b", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
    return s;
}

TEST(LocalSearch, FindsGlobalOptimumOnSmoothGrid)
{
    SearchSpace s = grid_space();
    // Score peaks at (7, 3).
    ScoreFn score = [](const Configuration& c) {
        double a = static_cast<double>(as_int(c[0]));
        double b = static_cast<double>(as_int(c[1]));
        return -(a - 7) * (a - 7) - (b - 3) * (b - 3);
    };
    RngEngine rng(1);
    LocalSearchOptions opt;
    opt.random_samples = 20;
    opt.starts = 3;
    auto best = local_search_maximize(s, nullptr, score, rng, opt);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(as_int((*best)[0]), 7);
    EXPECT_EQ(as_int((*best)[1]), 3);
}

TEST(LocalSearch, BeatsPoolOnlyModeOnAverage)
{
    SearchSpace s = grid_space();
    ScoreFn score = [](const Configuration& c) {
        double a = static_cast<double>(as_int(c[0]));
        double b = static_cast<double>(as_int(c[1]));
        return -(a - 9) * (a - 9) - (b - 9) * (b - 9);
    };
    int climb_wins = 0;
    for (int trial = 0; trial < 20; ++trial) {
        RngEngine r1(static_cast<std::uint64_t>(trial));
        RngEngine r2(static_cast<std::uint64_t>(trial));
        LocalSearchOptions climb;
        climb.random_samples = 5;
        climb.starts = 2;
        LocalSearchOptions pool = climb;
        pool.hill_climb = false;
        double with = score(*local_search_maximize(s, nullptr, score, r1,
                                                   climb));
        double without = score(*local_search_maximize(s, nullptr, score, r2,
                                                      pool));
        climb_wins += (with >= without) ? 1 : 0;
    }
    EXPECT_GE(climb_wins, 18);  // hill climbing should (weakly) dominate
}

TEST(LocalSearch, RespectsKnownConstraintsViaCot)
{
    SearchSpace s;
    s.add_ordinal("a", {1, 2, 4, 8, 16});
    s.add_ordinal("b", {1, 2, 4, 8, 16});
    s.add_constraint("a >= b");
    ChainOfTrees cot = ChainOfTrees::build(s);
    // Push toward the infeasible corner (small a, large b): the search must
    // stay inside a >= b.
    ScoreFn score = [](const Configuration& c) {
        return static_cast<double>(as_int(c[1]) - as_int(c[0]));
    };
    RngEngine rng(3);
    auto best = local_search_maximize(s, &cot, score, rng);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(as_int((*best)[0]), as_int((*best)[1]));
    // The constrained optimum is a == b.
    EXPECT_EQ(as_int((*best)[0]), as_int((*best)[1]));
}

TEST(LocalSearch, TreeMovesEscapeCoupledLocalOptima)
{
    // Score depends jointly on two co-dependent parameters; single-
    // parameter moves often leave the feasible region, so whole-tree
    // resampling is needed to move at all.
    SearchSpace s;
    s.add_ordinal("a", {1, 2, 4, 8, 16, 32});
    s.add_ordinal("b", {1, 2, 4, 8, 16, 32});
    s.add_constraint("a == b");  // diagonal only
    ChainOfTrees cot = ChainOfTrees::build(s);
    ScoreFn score = [](const Configuration& c) {
        return static_cast<double>(as_int(c[0]));
    };
    RngEngine rng(4);
    LocalSearchOptions opt;
    opt.random_samples = 4;
    auto best = local_search_maximize(s, &cot, score, rng, opt);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(as_int((*best)[0]), 32);
}

TEST(LocalSearch, HandlesRejectingScore)
{
    SearchSpace s = grid_space();
    // All candidates rejected: the search still returns something (the
    // least-bad candidate) rather than crashing.
    ScoreFn score = [](const Configuration&) { return -1.0; };
    RngEngine rng(5);
    auto best = local_search_maximize(s, nullptr, score, rng);
    EXPECT_TRUE(best.has_value());
}

}  // namespace
}  // namespace baco
