// RISE & ELEVATE substrate: model sanity, constraint structure, experts.

#include <gtest/gtest.h>

#include "core/chain_of_trees.hpp"
#include "rise/benchmarks.hpp"
#include "rise/gpu_model.hpp"

namespace baco::rise {
namespace {

TEST(GpuModelHelpers, OccupancyBounds)
{
    for (double threads : {32.0, 128.0, 1024.0}) {
        for (double local : {0.0, 4096.0, 49152.0}) {
            double occ = occupancy(threads, local);
            EXPECT_GE(occ, 0.0);
            EXPECT_LE(occ, 1.0);
        }
    }
    // More local memory per work-group lowers occupancy.
    EXPECT_GE(occupancy(128, 1024.0), occupancy(128, 40000.0));
}

TEST(GpuModelHelpers, CoalescingImprovesWithSpan)
{
    EXPECT_LT(coalescing(1, 1), coalescing(32, 1));
    EXPECT_NEAR(coalescing(32, 1), 1.0, 1e-12);
    EXPECT_NEAR(coalescing(8, 4), 1.0, 1e-12);
}

TEST(MmCpu, LoopOrderMatters)
{
    // k-innermost (identity) is the bad classic; i,k,j is the good one.
    ModelResult bad = mm_cpu(32, 32, 32, 4, Permutation{0, 1, 2});
    ModelResult good = mm_cpu(32, 32, 32, 4, Permutation{0, 2, 1});
    ASSERT_TRUE(bad.feasible);
    ASSERT_TRUE(good.feasible);
    EXPECT_GT(bad.ms / good.ms, 1.5);
}

TEST(MmCpu, HiddenConstraintOnRegisterTiles)
{
    EXPECT_FALSE(mm_cpu(256, 256, 4, 1, Permutation{0, 2, 1}).feasible);
    EXPECT_TRUE(mm_cpu(64, 64, 4, 1, Permutation{0, 2, 1}).feasible);
}

TEST(MmGpu, HiddenResourceConstraints)
{
    // Work-group too large.
    EXPECT_FALSE(mm_gpu(32, 32, 64, 64, 16, 2, 2, 1, 1, 1).feasible &&
                 32 * 32 > 1024);
    // Local memory overflow: giant tiles with double buffering.
    ModelResult shared_blowup = mm_gpu(16, 16, 128, 128, 64, 8, 8, 1, 2, 1);
    EXPECT_FALSE(shared_blowup.feasible);
    // A classic sane configuration works.
    ModelResult ok = mm_gpu(16, 16, 64, 64, 16, 4, 4, 2, 1, 1);
    EXPECT_TRUE(ok.feasible);
    EXPECT_GT(ok.ms, 0.0);
}

TEST(MmGpu, TilingReducesMemoryTime)
{
    ModelResult small = mm_gpu(8, 8, 16, 16, 8, 2, 2, 1, 1, 1);
    ModelResult large = mm_gpu(16, 16, 64, 64, 16, 4, 4, 2, 1, 1);
    ASSERT_TRUE(small.feasible && large.feasible);
    EXPECT_LT(large.ms, small.ms);
}

TEST(AsumScalStencil, AlwaysFeasibleModels)
{
    // Asum and Stencil have no hidden constraints (Table 3): their models
    // never report failures.
    EXPECT_TRUE(asum_gpu(65536, 1024, 128, 8, 8).feasible);
    EXPECT_TRUE(asum_gpu(256, 32, 1, 1, 1).feasible);
    EXPECT_TRUE(stencil_gpu(256, 32, 32, 8).feasible);
    EXPECT_TRUE(stencil_gpu(8, 1, 1, 1).feasible);
}

TEST(ScalKmeans, HiddenConstraintsTrigger)
{
    EXPECT_FALSE(scal_gpu(1024, 1, 512, 8, 1, 4, 1).feasible);
    EXPECT_TRUE(scal_gpu(16384, 32, 16, 1, 4, 8, 1).feasible);
    EXPECT_FALSE(kmeans_gpu(1024, 8, 8, 1).feasible);
    EXPECT_TRUE(kmeans_gpu(64, 16, 1, 1).feasible);
}

TEST(RiseBenchmarks, SuiteShapeMatchesTable3)
{
    std::vector<Benchmark> suite = rise_suite();
    ASSERT_EQ(suite.size(), 7u);
    auto dims = [](const Benchmark& b) {
        return b.make_space(SpaceVariant{})->num_params();
    };
    EXPECT_EQ(dims(suite[0]), 5u);   // MM_CPU
    EXPECT_EQ(dims(suite[1]), 10u);  // MM_GPU
    EXPECT_EQ(dims(suite[2]), 5u);   // Asum
    EXPECT_EQ(dims(suite[3]), 7u);   // Scal
    EXPECT_EQ(dims(suite[4]), 4u);   // K-means
    EXPECT_EQ(dims(suite[5]), 7u);   // Harris
    EXPECT_EQ(dims(suite[6]), 4u);   // Stencil

    // Hidden-constraint flags per Table 3.
    EXPECT_TRUE(suite[0].has_hidden_constraints);
    EXPECT_TRUE(suite[1].has_hidden_constraints);
    EXPECT_FALSE(suite[2].has_hidden_constraints);
    EXPECT_TRUE(suite[3].has_hidden_constraints);
    EXPECT_TRUE(suite[4].has_hidden_constraints);
    EXPECT_FALSE(suite[5].has_hidden_constraints);
    EXPECT_FALSE(suite[6].has_hidden_constraints);

    // Every space declares known constraints.
    for (const Benchmark& b : suite)
        EXPECT_TRUE(b.make_space(SpaceVariant{})->has_constraints()) << b.name;
}

TEST(RiseBenchmarks, SpacesBuildValidChainsOfTrees)
{
    for (const Benchmark& b : rise_suite()) {
        auto space = b.make_space(SpaceVariant{});
        ChainOfTrees cot = ChainOfTrees::build(*space);
        EXPECT_GT(cot.num_feasible(), 0.0) << b.name;
        EXPECT_LT(cot.num_feasible(), space->dense_size() + 0.5) << b.name;
        RngEngine rng(1);
        for (int i = 0; i < 50; ++i)
            EXPECT_TRUE(space->satisfies(cot.sample(rng, true))) << b.name;
    }
}

TEST(RiseBenchmarks, DefaultsAndExpertsAreValid)
{
    for (const Benchmark& b : rise_suite()) {
        ASSERT_TRUE(b.default_config.has_value()) << b.name;
        ASSERT_TRUE(b.expert.has_value()) << b.name;
        auto space = b.make_space(SpaceVariant{});
        EXPECT_TRUE(space->satisfies(*b.default_config)) << b.name;
        EXPECT_TRUE(b.hidden_feasible(*b.default_config)) << b.name;
        EXPECT_TRUE(space->satisfies(*b.expert)) << b.name;
        EXPECT_TRUE(b.hidden_feasible(*b.expert)) << b.name;
        // Expert clearly better than default.
        EXPECT_LT(b.true_cost(*b.expert), b.true_cost(*b.default_config))
            << b.name;
    }
}

TEST(RiseBenchmarks, ExpertIsStrongAgainstRandomSearch)
{
    // The semi-automated expert should beat the best of 200 random samples
    // most of the time (it saw 1200).
    for (const char* name : {"MM_GPU", "Asum_GPU", "Stencil_GPU"}) {
        Benchmark b = make_rise_benchmark(name);
        auto space = b.make_space(SpaceVariant{});
        ChainOfTrees cot = ChainOfTrees::build(*space);
        RngEngine rng(123);
        double best_random = std::numeric_limits<double>::infinity();
        for (int i = 0; i < 200; ++i) {
            Configuration c = cot.sample(rng, true);
            if (!b.hidden_feasible(c))
                continue;
            best_random = std::min(best_random, b.true_cost(c));
        }
        EXPECT_LT(b.true_cost(*b.expert), best_random * 1.25) << name;
    }
}

TEST(RiseBenchmarks, HiddenInfeasibleFractionIsMeaningful)
{
    // MM_GPU's hidden constraints must actually bite: a noticeable share of
    // known-feasible samples fail at evaluation (paper Sec. 2).
    Benchmark b = make_rise_benchmark("MM_GPU");
    auto space = b.make_space(SpaceVariant{});
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(7);
    int fail = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i)
        fail += b.hidden_feasible(cot.sample(rng, true)) ? 0 : 1;
    EXPECT_GT(fail, n / 20);
    EXPECT_LT(fail, n * 95 / 100);
}

}  // namespace
}  // namespace baco::rise
