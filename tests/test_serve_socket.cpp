// Multi-client socket serving: the Acceptor loop, SocketTransport
// (Unix-domain and TCP), runtime worker attach, the bounded session
// registry's spill/reload, and the front-door Remote/Attached execution
// policies.
//
// The headline pin (ISSUE acceptance): two clients tuning different
// sessions CONCURRENTLY over one `baco_serve --listen`-shaped acceptor
// produce bit-for-bit the same histories as two sequential
// single-connection (stdio-shaped) runs with the same seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/baco.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/runner.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

// A peer vanishing mid-send must surface as a failed send, not SIGPIPE.
const int kSigpipeIgnored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
}();

std::string
unique_unix_path(const std::string& tag)
{
    static int counter = 0;
    return testing::TempDir() + "baco_sock_" + tag + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++) +
           ".sock";
}

void
concurrent_clients_match_sequential(const std::string& listen_spec)
{
    const int budget = 10;
    const int batch = 3;
    // The shared parity harness (also the --selftest socket leg):
    // sequential stdio-shaped references, then the same two sessions
    // concurrently over one acceptor, compared bit-for-bit.
    SocketParityResult parity = socket_parity_check(
        listen_spec, kBench, "baco", budget, batch, /*seed1=*/31,
        /*seed2=*/32);
    EXPECT_TRUE(parity.ok) << parity.detail;
    EXPECT_EQ(parity.evals_per_client, static_cast<std::size_t>(budget));
    EXPECT_EQ(parity.stats.accepted, 2u);
    EXPECT_EQ(parity.stats.errors, 0u);
    // Per client: open + close plus one suggest/observe pair per round.
    EXPECT_GE(parity.stats.requests, 2u * (2 + budget / batch));
}

TEST(ServeSocket, ConcurrentUnixClientsMatchSequentialStdioRuns)
{
    concurrent_clients_match_sequential("unix:" +
                                        unique_unix_path("parity"));
}

TEST(ServeSocket, ConcurrentTcpClientsMatchSequentialStdioRuns)
{
    concurrent_clients_match_sequential("tcp:127.0.0.1:0");
}

TEST(ServeSocket, MidFrameDisconnectLeavesServerServing)
{
    std::string path = unique_unix_path("midframe");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    ServerContext ctx;
    ctx.sessions = &sessions;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    // A raw client that dies mid-frame — half a hello, no newline.
    auto raw_connect = [&] {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un sa = {};
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, path.c_str(), path.size());
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa),
                            sizeof sa),
                  0);
        return fd;
    };
    {
        int fd = raw_connect();
        Message hello;
        hello.type = MsgType::kHello;
        std::string frame = encode(hello);
        std::string half = frame.substr(0, frame.size() / 2);
        ASSERT_EQ(::send(fd, half.data(), half.size(), 0),
                  static_cast<ssize_t>(half.size()));
        ::close(fd);
    }
    // A second one that completes the handshake, then dies mid-request.
    {
        int fd = raw_connect();
        Message hello;
        hello.type = MsgType::kHello;
        std::string frame = encode(hello) + "\n";
        ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
                  static_cast<ssize_t>(frame.size()));
        char buf[512];
        ASSERT_GT(::recv(fd, buf, sizeof buf, 0), 0);  // welcome
        Message open;
        open.type = MsgType::kOpenSession;
        open.session = "doomed";
        open.benchmark = kBench;
        open.method = "Uniform";
        open.budget = 8;
        std::string partial = encode(open);
        partial = partial.substr(0, partial.size() - 5);  // cut mid-frame
        ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
                  static_cast<ssize_t>(partial.size()));
        ::close(fd);
    }

    // The server must still serve a well-behaved client end-to-end, and
    // the truncated open_session must not have leaked a session.
    std::unique_ptr<Transport> t =
        connect_socket("unix:" + path);
    ASSERT_TRUE(t);
    SessionClient client(*t);
    ASSERT_TRUE(client.handshake());
    std::vector<double> values =
        drive_session(client, "healthy", kBench, "Uniform", 6, 7, 2);
    EXPECT_EQ(values.size(), 6u);
    EXPECT_EQ(sessions.size(), 0u);  // "doomed" never opened; "healthy" closed

    acceptor.stop();
    server.join();
}

TEST(ServeSocket, MaxClientsRejectsTheExcessConnection)
{
    std::string path = unique_unix_path("full");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    ServerContext ctx;
    ctx.sessions = &sessions;
    AcceptorOptions opt;
    opt.max_clients = 1;
    Acceptor acceptor(std::move(listener), ctx, opt);
    std::thread server([&acceptor] { acceptor.run(); });

    std::unique_ptr<Transport> first = connect_socket("unix:" + path);
    ASSERT_TRUE(first);
    SessionClient c1(*first);
    ASSERT_TRUE(c1.handshake());  // occupies the only slot

    std::unique_ptr<Transport> second = connect_socket("unix:" + path);
    ASSERT_TRUE(second);
    Message hello;
    hello.type = MsgType::kHello;
    ASSERT_TRUE(second->send(encode(hello)));
    std::string line;
    ASSERT_EQ(second->recv(line, 10000), RecvStatus::kOk);
    Message reply;
    ASSERT_TRUE(decode(line, reply));
    EXPECT_EQ(reply.type, MsgType::kError);
    EXPECT_NE(reply.text.find("server full"), std::string::npos)
        << reply.text;

    // Freeing the slot re-admits clients.
    first->close();
    while (acceptor.live_clients() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::unique_ptr<Transport> third = connect_socket("unix:" + path);
    ASSERT_TRUE(third);
    SessionClient c3(*third);
    EXPECT_TRUE(c3.handshake());

    acceptor.stop();
    server.join();
    EXPECT_EQ(acceptor.stats().rejected, 1u);
}

TEST(ServeSocket, SessionsSpillAndReloadAcrossConcurrentClients)
{
    const int budget = 8;
    const int batch = 2;
    // Uncapped reference histories.
    std::vector<double> ref1 = sequential_session_values(
        "s1", kBench, "baco", budget, 51, batch);
    std::vector<double> ref2 = sequential_session_values(
        "s2", kBench, "baco", budget, 52, batch);

    std::string ckpt_dir = testing::TempDir() + "baco_spill_" +
                           std::to_string(::getpid());
    std::string path = unique_unix_path("spill");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManagerOptions sopt;
    sopt.checkpoint_dir = ckpt_dir;
    sopt.max_live_sessions = 1;  // two sessions must ping-pong spill
    SessionManager sessions(sopt);
    ServerContext ctx;
    ctx.sessions = &sessions;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    // Two connections, one session each, driven round-robin from one
    // thread so every round of one session evicts the other's tuner.
    auto t1 = connect_socket("unix:" + path);
    auto t2 = connect_socket("unix:" + path);
    ASSERT_TRUE(t1 && t2);
    SessionClient c1(*t1), c2(*t2);
    ASSERT_TRUE(c1.handshake());
    ASSERT_TRUE(c2.handshake());
    ASSERT_EQ(c1.open("s1", kBench, "baco", budget, 51).type,
              MsgType::kOpened);
    ASSERT_EQ(c2.open("s2", kBench, "baco", budget, 52).type,
              MsgType::kOpened);

    const Benchmark& bench = suite::find_benchmark(kBench);
    auto one_round = [&](SessionClient& c, const std::string& name,
                         std::uint64_t seed, std::vector<double>& out) {
        Message configs = c.suggest(name, batch);
        ASSERT_EQ(configs.type, MsgType::kConfigs) << configs.text;
        std::vector<ObservedResult> results;
        for (std::size_t i = 0; i < configs.configs.size(); ++i) {
            ObservedResult r;
            r.config = configs.configs[i];
            EvalResult e =
                evaluate_on(bench, r.config, seed, configs.index + i);
            r.value = e.value;
            r.feasible = e.feasible;
            out.push_back(e.value);
            results.push_back(std::move(r));
        }
        ASSERT_EQ(c.observe(name, std::move(results)).type, MsgType::kOk);
    };
    std::vector<double> got1, got2;
    for (int round = 0; round < budget / batch; ++round) {
        one_round(c1, "s1", 51, got1);
        one_round(c2, "s2", 52, got2);
    }

    // Lifetime per-session stats: every spill folds the live histograms
    // into the spilled metadata and a reload re-attaches them as the
    // base, so the counts cover ALL incarnations — one entry per
    // suggest/observe round despite the tuner having been rebuilt from
    // its checkpoint in between.
    Message s1_stats = c1.stats("s1");
    ASSERT_EQ(s1_stats.type, MsgType::kStatsReport) << s1_stats.text;
    const std::uint64_t rounds = budget / batch;
    bool saw_suggest = false;
    bool saw_observe = false;
    for (const StatEntry& e : s1_stats.stats) {
        if (e.name == "session.suggest_seconds") {
            saw_suggest = true;
            EXPECT_EQ(e.count, rounds);
        }
        if (e.name == "session.observe_seconds") {
            saw_observe = true;
            EXPECT_EQ(e.count, rounds);
        }
    }
    EXPECT_TRUE(saw_suggest);
    EXPECT_TRUE(saw_observe);

    EXPECT_EQ(c1.close("s1").type, MsgType::kOk);
    EXPECT_EQ(c2.close("s2").type, MsgType::kOk);

    EXPECT_EQ(got1, ref1);
    EXPECT_EQ(got2, ref2);
    // The cap is 1 and two sessions interleaved: reloads must have
    // happened, and the registry never ended above the cap.
    EXPECT_GT(sessions.spill_count(), 0u);
    EXPECT_GT(sessions.reload_count(), 0u);
    EXPECT_LE(sessions.size(), 1u);

    acceptor.stop();
    server.join();
}

TEST(ServeSocket, WorkerAttachedOverSocketServesRunRequests)
{
    const int budget = 8;
    std::string path = unique_unix_path("fleet");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    Coordinator coordinator;
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    // A worker joins the fleet over the same socket clients use.
    std::thread worker([&path] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        run_worker_loop(*t);
    });
    while (acceptor.stats().workers_attached == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(coordinator.num_workers(), 1u);

    // A server-side run sharded over that worker must match the
    // in-process run bit-for-bit (worker placement never matters).
    auto run_session = [&](Transport& t, const std::string& name) {
        SessionClient client(t);
        EXPECT_TRUE(client.handshake());
        Message open = client.open(name, kBench, "Uniform", budget, 9);
        EXPECT_EQ(open.type, MsgType::kOpened) << open.text;
        Message run;
        run.type = MsgType::kRun;
        run.session = name;
        run.n = 3;
        Message done = client.rpc(std::move(run));
        EXPECT_EQ(done.type, MsgType::kDone) << done.text;
        EXPECT_EQ(client.close(name).type, MsgType::kOk);
        return done;
    };

    std::unique_ptr<Transport> fleet_client =
        connect_socket("unix:" + path);
    ASSERT_TRUE(fleet_client);
    Message sharded = run_session(*fleet_client, "fleet-run");

    SessionManager local_sessions;
    ServerContext local_ctx;
    local_ctx.sessions = &local_sessions;
    auto [client_end, server_end] = loopback_pair();
    std::thread local_server(
        [&local_ctx, t = std::shared_ptr<Transport>(std::move(server_end))] {
            serve_connection(*t, local_ctx);
        });
    Message local = run_session(*client_end, "local-run");
    Message bye;
    bye.type = MsgType::kShutdown;
    client_end->send(encode(bye));
    local_server.join();
    EXPECT_EQ(sharded.evals, static_cast<std::uint64_t>(budget));
    EXPECT_EQ(sharded.evals, local.evals);
    EXPECT_EQ(sharded.best, local.best);

    acceptor.stop();
    server.join();
    coordinator.shutdown();
    worker.join();
}

TEST(ServeSocket, RemotePolicyMatchesLoopbackDistributed)
{
    const int budget = 12;
    const int batch = 4;
    auto study_with = [&](ExecutionPolicy policy) {
        return StudyBuilder()
            .benchmark(kBench)
            .method("baco")
            .budget(budget)
            .seed(5)
            .execution(policy)
            .build()
            .run();
    };
    StudyResult reference = study_with(ExecutionPolicy::Distributed(1, batch));

    // A worker daemon (baco_worker --listen shape) the study dials.
    std::string path = unique_unix_path("daemon");
    Listener worker_listener;
    ASSERT_TRUE(
        worker_listener.open(*parse_socket_address("unix:" + path)));
    std::thread daemon([&worker_listener] {
        std::unique_ptr<Transport> t = worker_listener.accept();
        ASSERT_TRUE(t);
        run_worker_loop(*t);
    });

    StudyResult remote = study_with(
        ExecutionPolicy::Remote({"unix:" + path}, batch));
    EXPECT_TRUE(histories_equal(reference.history, remote.history));
    daemon.join();
}

TEST(ServeSocket, AttachedPolicyDrivesAnExternallyOwnedFleet)
{
    const int budget = 12;
    const int batch = 4;
    auto study_with = [&](ExecutionPolicy policy) {
        return StudyBuilder()
            .benchmark(kBench)
            .method("baco")
            .budget(budget)
            .seed(6)
            .execution(policy)
            .build()
            .run();
    };
    StudyResult reference =
        study_with(ExecutionPolicy::Distributed(2, batch));

    Coordinator fleet;
    std::vector<std::thread> workers = attach_loopback_workers(fleet, 2);
    StudyResult first = study_with(ExecutionPolicy::Attached(&fleet, batch));
    // The fleet survives the study — a second one reuses it.
    StudyResult second =
        study_with(ExecutionPolicy::Attached(&fleet, batch));
    EXPECT_TRUE(histories_equal(reference.history, first.history));
    EXPECT_TRUE(histories_equal(reference.history, second.history));
    fleet.shutdown();
    for (std::thread& w : workers)
        w.join();
}

TEST(ServeSocket, CmdWorkerAddressSpawnsAChildProcess)
{
    if (::access("./baco_worker", X_OK) != 0)
        GTEST_SKIP() << "baco_worker binary not in the working directory";
    const int budget = 8;
    const int batch = 4;
    auto study_with = [&](ExecutionPolicy policy) {
        return StudyBuilder()
            .benchmark(kBench)
            .method("Uniform")
            .budget(budget)
            .seed(8)
            .execution(policy)
            .build()
            .run();
    };
    StudyResult reference =
        study_with(ExecutionPolicy::Distributed(1, batch));
    StudyResult spawned = study_with(
        ExecutionPolicy::Remote({"cmd:./baco_worker --capacity 2"}, batch));
    EXPECT_TRUE(histories_equal(reference.history, spawned.history));
}

TEST(ServeSocket, DeadWorkerDetectedViaMissedHeartbeats)
{
    // Reroute the event log so the death is asserted in the record a
    // fleet operator would read; restored on every exit path.
    std::string log_path = testing::TempDir() + "baco_dead_worker_" +
                           std::to_string(::getpid()) + ".jsonl";
    struct LogGuard {
        ~LogGuard()
        {
            obs::EventLog::global().configure(obs::LogLevel::kWarn, "");
        }
    } log_guard;
    obs::EventLog::global().configure(obs::LogLevel::kInfo, log_path);

    std::string path = unique_unix_path("dead");
    Listener listener;
    ASSERT_TRUE(listener.open(*parse_socket_address("unix:" + path)));
    SessionManager sessions;
    Coordinator coordinator;
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    // A healthy worker beaconing every 50ms.
    std::thread healthy([&path] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        WorkerOptions opt;
        opt.heartbeat_ms = 50;
        run_worker_loop(*t, opt);
    });
    // A wedged worker: advertises the same beacon, accepts work, then
    // goes silent WITHOUT closing its socket — the shape a hung
    // evaluation (or a worker SIGSTOPped mid-run) presents. A kill(2)'d
    // process would close the socket and take the cheap kClosed path;
    // only missed heartbeats can catch this one.
    std::atomic<bool> release{false};
    std::thread wedged([&path, &release] {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        ASSERT_TRUE(t);
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        hello.capacity = 1;
        hello.heartbeat_ms = 50;
        ASSERT_TRUE(t->send(encode(hello)));
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    while (coordinator.num_workers() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();

    // A sharded run across both workers. The wedged worker's shards go
    // silent; after 2 missed 50ms heartbeat intervals the coordinator
    // must declare it dead, requeue onto the healthy worker, and still
    // finish the full budget (values are (seed, index)-derived, so the
    // requeue changes nothing observable).
    const int budget = 16;
    const Benchmark& bench = suite::find_benchmark(kBench);
    auto space = bench.make_space(SpaceVariant{});
    std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
        *space, suite::Method::kUniform, budget, /*doe_samples=*/4,
        /*seed=*/77);
    BatchSpec spec;
    spec.benchmark = kBench;
    spec.run_seed = 77;
    TuningHistory history = coordinator.run(*tuner, spec, /*batch=*/4);
    EXPECT_EQ(history.size(), static_cast<std::size_t>(budget));

    // The registry counted the death...
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);
    EXPECT_GE(delta.value("coord.worker.dead"), 1.0);
    // ...the health registry agrees...
    int dead = 0;
    int alive = 0;
    for (const WorkerHealthSnapshot& h : coordinator.health()) {
        if (h.state == "dead")
            ++dead;
        if (h.state == "alive")
            ++alive;
    }
    EXPECT_EQ(dead, 1);
    EXPECT_EQ(alive, 1);
    EXPECT_EQ(coordinator.num_workers(), 1u);
    // ...and the event log recorded it with the heartbeat reason.
    obs::EventLog::global().configure(obs::LogLevel::kWarn, "");
    std::ifstream in(log_path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("worker_dead"), std::string::npos)
        << buf.str();
    EXPECT_NE(buf.str().find("heartbeat"), std::string::npos);

    release.store(true);
    wedged.join();
    acceptor.stop();
    server.join();
    coordinator.shutdown();
    healthy.join();
}

TEST(ServeSocket, MetricsIntervalFileAndSigusr1Dump)
{
    if (::access("./baco_serve", X_OK) != 0)
        GTEST_SKIP() << "baco_serve binary not in the working directory";
    std::string sock = unique_unix_path("metrics");
    std::string metrics_path = testing::TempDir() + "baco_metrics_" +
                               std::to_string(::getpid()) + ".jsonl";
    std::remove(metrics_path.c_str());
    ChildProcess serve = spawn_process(
        {"./baco_serve", "--listen", "unix:" + sock, "--metrics-interval",
         "60", "--metrics-file", metrics_path, "--log-level", "error"});
    ASSERT_TRUE(serve.transport);

    std::unique_ptr<Transport> t;
    for (int i = 0; i < 400 && !t; ++i) {
        t = connect_socket("unix:" + sock);
        if (!t)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_TRUE(t) << "server socket never came up";
    SessionClient client(*t);
    ASSERT_TRUE(client.handshake());
    std::vector<double> values =
        drive_session(client, "m", kBench, "Uniform", 6, 3, 2);
    EXPECT_EQ(values.size(), 6u);

    auto file_contains = [&](const char* needle) {
        std::ifstream in(metrics_path);
        std::stringstream buf;
        buf << in.rdbuf();
        return buf.str().find(needle) != std::string::npos;
    };
    // The 60s interval cannot have fired: only SIGUSR1 produces this.
    ::kill(serve.pid, SIGUSR1);
    for (int i = 0; i < 200 && !file_contains("\"reason\":\"sigusr1\"");
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_TRUE(file_contains("\"reason\":\"sigusr1\""));

    t->close();
    ::kill(serve.pid, SIGTERM);
    EXPECT_EQ(wait_process(serve.pid), 0);
    // The graceful-exit dump always lands, and the dumps carry the
    // registry itself, not just headers.
    EXPECT_TRUE(file_contains("\"reason\":\"shutdown\""));
    EXPECT_TRUE(file_contains("serve.requests_total"));
}

TEST(ServeSocket, DistributedTraceMergesServerAndWorkerTracks)
{
    if (::access("./baco_serve", X_OK) != 0 ||
        ::access("./baco_worker", X_OK) != 0)
        GTEST_SKIP() << "baco_serve/baco_worker not in working directory";
    std::string sock = unique_unix_path("trace");
    std::string trace_path = testing::TempDir() + "baco_trace_dist_" +
                             std::to_string(::getpid()) + ".json";
    std::remove(trace_path.c_str());
    ChildProcess serve = spawn_process(
        {"./baco_serve", "--listen", "unix:" + sock, "--trace", trace_path,
         "--log-level", "error"});
    ASSERT_TRUE(serve.transport);
    std::unique_ptr<Transport> t;
    for (int i = 0; i < 400 && !t; ++i) {
        t = connect_socket("unix:" + sock);
        if (!t)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_TRUE(t) << "server socket never came up";

    ChildProcess w0 = spawn_process({"./baco_worker", "--connect",
                                     "unix:" + sock, "--heartbeat-ms",
                                     "200", "--log-level", "error"});
    ChildProcess w1 = spawn_process({"./baco_worker", "--connect",
                                     "unix:" + sock, "--heartbeat-ms",
                                     "200", "--log-level", "error"});
    ASSERT_TRUE(w0.transport && w1.transport);

    SessionClient client(*t);
    ASSERT_TRUE(client.handshake());
    // Wait for both workers to show in the fleet-health stats.
    for (int i = 0; i < 400; ++i) {
        Message stats = client.stats();
        double fleet_alive = 0.0;
        for (const StatEntry& e : stats.stats) {
            if (e.name == "coord.fleet.alive")
                fleet_alive = e.value;
        }
        if (fleet_alive >= 2.0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    // A server-side run: the coordinator shards evaluations over both
    // worker processes, each stamped with the propagated trace context.
    ASSERT_EQ(client.open("traced", kBench, "Uniform", 16, 11).type,
              MsgType::kOpened);
    Message run;
    run.type = MsgType::kRun;
    run.session = "traced";
    run.n = 4;
    Message done = client.rpc(std::move(run));
    EXPECT_EQ(done.type, MsgType::kDone) << done.text;
    EXPECT_EQ(client.close("traced").type, MsgType::kOk);
    t->close();

    // Graceful shutdown: goodbye drain, then the merged export.
    ::kill(serve.pid, SIGTERM);
    EXPECT_EQ(wait_process(serve.pid), 0);
    wait_process(w0.pid);
    wait_process(w1.pid);

    std::ifstream in(trace_path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string doc = buf.str();
    ASSERT_FALSE(doc.empty()) << "no trace exported at " << trace_path;
    // One timeline: the server track plus both worker processes' spans.
    EXPECT_NE(doc.find("\"server\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker-0\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker-1\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker.evaluate\""), std::string::npos);
    // Every imported span carries the SAME run id — the one the server
    // stamped on its dispatches (also recorded as pid-1 metadata).
    std::string first_run;
    std::size_t at = 0;
    int run_spans = 0;
    while ((at = doc.find("\"run\": \"", at)) != std::string::npos) {
        at += 8;
        std::string id = doc.substr(at, doc.find('"', at) - at);
        if (first_run.empty())
            first_run = id;
        EXPECT_EQ(id, first_run);
        ++run_spans;
    }
    EXPECT_GE(run_spans, 2);  // both workers shipped spans
    EXPECT_FALSE(first_run.empty());
    EXPECT_NE(doc.find(first_run), std::string::npos);
}

TEST(ServeSocket, UnreachableRemoteWorkerFailsLoudly)
{
    auto study = StudyBuilder()
                     .benchmark(kBench)
                     .method("Uniform")
                     .budget(4)
                     .execution(ExecutionPolicy::Remote(
                         {"unix:" + unique_unix_path("nowhere")}))
                     .build();
    EXPECT_THROW(study.run(), std::runtime_error);
}

TEST(ServeSocket, AddressParsing)
{
    std::string error;
    auto u = parse_socket_address("unix:/tmp/x.sock");
    ASSERT_TRUE(u);
    EXPECT_EQ(u->kind, SocketAddress::Kind::kUnix);
    EXPECT_EQ(u->path, "/tmp/x.sock");
    EXPECT_EQ(u->str(), "unix:/tmp/x.sock");

    auto t = parse_socket_address("tcp:localhost:7070");
    ASSERT_TRUE(t);
    EXPECT_EQ(t->kind, SocketAddress::Kind::kTcp);
    EXPECT_EQ(t->host, "localhost");
    EXPECT_EQ(t->port, 7070);

    auto v6 = parse_socket_address("tcp:[::1]:8080");
    ASSERT_TRUE(v6);
    EXPECT_EQ(v6->host, "::1");
    EXPECT_EQ(v6->port, 8080);
    EXPECT_EQ(v6->str(), "tcp:[::1]:8080");

    EXPECT_FALSE(parse_socket_address("unix:", &error));
    EXPECT_FALSE(parse_socket_address("tcp:nohost", &error));
    EXPECT_FALSE(parse_socket_address("tcp:h:99999", &error));
    EXPECT_FALSE(parse_socket_address("http://x", &error));
    EXPECT_FALSE(parse_socket_address("tcp:h:12x", &error));
}

}  // namespace
}  // namespace baco::serve
