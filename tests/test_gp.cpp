// Gaussian process: kernel math, fitting, prediction quality, priors.

#include <gtest/gtest.h>

#include <cmath>

#include "gp/gp_model.hpp"

namespace baco {
namespace {

SearchSpace
one_d_space()
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    return s;
}

Configuration
cfg1(double x)
{
    return {ParamValue{x}};
}

TEST(Matern52, KnownValues)
{
    EXPECT_DOUBLE_EQ(matern52(0.0), 1.0);
    // Monotone decreasing.
    double prev = 1.0;
    for (double r = 0.1; r < 3.0; r += 0.1) {
        double v = matern52(r);
        EXPECT_LT(v, prev);
        EXPECT_GT(v, 0.0);
        prev = v;
    }
}

TEST(GpHyperparams, VectorRoundTrip)
{
    GpHyperparams hp;
    hp.log_lengthscales = {0.1, -0.2, 0.3};
    hp.log_outputscale = 0.5;
    hp.log_noise = -5.0;
    GpHyperparams back = GpHyperparams::from_vector(hp.to_vector());
    EXPECT_EQ(back.log_lengthscales, hp.log_lengthscales);
    EXPECT_DOUBLE_EQ(back.log_outputscale, hp.log_outputscale);
    EXPECT_DOUBLE_EQ(back.log_noise, hp.log_noise);
}

TEST(GpModel, InterpolatesTrainingPoints)
{
    SearchSpace s = one_d_space();
    GpModel gp(s);
    RngEngine rng(1);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        xs.push_back(cfg1(x));
        ys.push_back(std::sin(6.0 * x));
    }
    gp.fit(xs, ys, rng);
    // MAP fitting with a noise prior smooths slightly; allow 0.1.
    for (std::size_t i = 0; i < xs.size(); ++i) {
        GpPrediction p = gp.predict(xs[i]);
        EXPECT_NEAR(p.mean, ys[i], 0.1);
    }
}

TEST(GpModel, UncertaintyGrowsAwayFromData)
{
    SearchSpace s = one_d_space();
    GpModel gp(s);
    RngEngine rng(2);
    std::vector<Configuration> xs{cfg1(0.0), cfg1(0.1), cfg1(0.2)};
    std::vector<double> ys{1.0, 1.2, 0.9};
    gp.fit(xs, ys, rng);
    double var_near = gp.predict(cfg1(0.1)).var;
    double var_far = gp.predict(cfg1(0.9)).var;
    EXPECT_LT(var_near, var_far);
    EXPECT_GE(var_near, 0.0);
}

TEST(GpModel, PredictionAccuracyOnSmoothFunction)
{
    SearchSpace s = one_d_space();
    GpModel gp(s);
    RngEngine rng(3);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 20; ++i) {
        double x = i / 20.0;
        xs.push_back(cfg1(x));
        ys.push_back(x * x + 0.3 * std::sin(8 * x));
    }
    gp.fit(xs, ys, rng);
    // Held-out points.
    for (double x : {0.13, 0.37, 0.61, 0.83}) {
        double truth = x * x + 0.3 * std::sin(8 * x);
        EXPECT_NEAR(gp.predict(cfg1(x)).mean, truth, 0.08);
    }
}

TEST(GpModel, AnalyticGradientMatchesFiniteDifferences)
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_ordinal("o", {1, 2, 4, 8}, true);
    s.add_permutation("p", 3);
    GpModel gp(s);
    RngEngine rng(4);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i < 12; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        ys.push_back(as_real(c[0]) + 0.1 * static_cast<double>(as_int(c[1])) +
                     rng.normal(0, 0.01));
        xs.push_back(std::move(c));
    }
    gp.fit(xs, ys, rng);

    GpHyperparams hp;
    hp.log_lengthscales = {std::log(0.4), std::log(0.7), std::log(0.9)};
    hp.log_outputscale = std::log(1.3);
    hp.log_noise = std::log(1e-3);

    std::vector<double> grad;
    double f0 = gp.objective_with_gradient(hp, &grad);
    ASSERT_TRUE(std::isfinite(f0));
    ASSERT_EQ(grad.size(), 5u);

    // Central finite differences on every log-hyperparameter.
    const double eps = 1e-6;
    std::vector<double> theta = hp.to_vector();
    for (std::size_t k = 0; k < theta.size(); ++k) {
        std::vector<double> up = theta, dn = theta;
        up[k] += eps;
        dn[k] -= eps;
        double fd = (gp.objective(GpHyperparams::from_vector(up)) -
                     gp.objective(GpHyperparams::from_vector(dn))) /
                    (2 * eps);
        EXPECT_NEAR(grad[k], fd,
                    1e-4 * std::max(1.0, std::abs(fd)))
            << "hyperparameter " << k;
    }
}

TEST(GpModel, FitLowersObjectiveVersusDefault)
{
    SearchSpace s = one_d_space();
    GpOptions opt;
    GpModel gp(s, opt);
    RngEngine rng(5);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 15; ++i) {
        double x = i / 15.0;
        xs.push_back(cfg1(x));
        ys.push_back(std::cos(5 * x));
    }
    gp.fit(xs, ys, rng);
    GpHyperparams def;
    def.log_lengthscales = {std::log(0.5)};
    def.log_outputscale = 0.0;
    def.log_noise = std::log(1e-4);
    EXPECT_LE(gp.objective(gp.hyperparams()), gp.objective(def) + 1e-6);
}

TEST(GpModel, PriorsShrinkExtremeLengthscales)
{
    // With a single informative dimension and an irrelevant one, the
    // no-prior fit can drive the irrelevant lengthscale to extremes; the
    // gamma prior keeps it moderate (paper Sec. 3.2).
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_real("noise_dim", 0.0, 1.0);
    RngEngine rng(6);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i < 14; ++i) {
        double x = rng.uniform(), z = rng.uniform();
        xs.push_back({ParamValue{x}, ParamValue{z}});
        ys.push_back(std::sin(5 * x));
    }
    GpOptions with;
    with.use_priors = true;
    GpModel gp_with(s, with);
    RngEngine r1(7);
    gp_with.fit(xs, ys, r1);
    for (double ll : gp_with.hyperparams().log_lengthscales) {
        EXPECT_GT(ll, std::log(1e-3));
        EXPECT_LT(ll, std::log(1e3));
    }
}

TEST(GpModel, MixedSpaceWithPermutation)
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16}, true);
    s.add_permutation("perm", 3);
    GpModel gp(s);
    RngEngine rng(8);
    std::vector<Configuration> xs;
    std::vector<double> ys;
    for (int i = 0; i < 16; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        const Permutation& p = as_permutation(c[1]);
        // Objective depends on the permutation (distance from identity).
        double d = std::abs(p[0] - 0) + std::abs(p[1] - 1) +
                   std::abs(p[2] - 2);
        ys.push_back(std::log2(static_cast<double>(as_int(c[0]))) + d);
        xs.push_back(std::move(c));
    }
    gp.fit(xs, ys, rng);
    // Identity permutation with small tile should predict lower than
    // reversed permutation with large tile.
    Configuration lo{ParamValue{std::int64_t{2}},
                     ParamValue{Permutation{0, 1, 2}}};
    Configuration hi{ParamValue{std::int64_t{16}},
                     ParamValue{Permutation{2, 1, 0}}};
    EXPECT_LT(gp.predict(lo).mean, gp.predict(hi).mean);
}

TEST(GpModel, RejectsDegenerateInput)
{
    SearchSpace s = one_d_space();
    GpModel gp(s);
    RngEngine rng(9);
    EXPECT_THROW(gp.fit({cfg1(0.5)}, {1.0}, rng), std::runtime_error);
    EXPECT_THROW(gp.predict(cfg1(0.5)), std::runtime_error);
}

// ---- Incremental extend() parity with full refits ----------------------

/**
 * Smooth 1-D target used by the extend parity tests. Points are laid out
 * in bit-reversed (van der Corput) order so every prefix of the history
 * samples the whole domain — the output standardizer of a prefix fit then
 * closely matches the full fit's, which is what makes tight parity
 * tolerances meaningful.
 */
void
smooth_history(std::size_t n, std::vector<Configuration>* xs,
               std::vector<double>* ys)
{
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t rev = 0, v = i;
        for (int b = 0; b < 6; ++b) {
            rev = (rev << 1) | (v & 1);
            v >>= 1;
        }
        double x = (static_cast<double>(rev) + 0.5) / 64.0;
        xs->push_back(cfg1(x));
        ys->push_back(x * x + 0.3 * std::sin(8 * x));
    }
}

GpHyperparams
fixed_hp()
{
    GpHyperparams hp;
    hp.log_lengthscales = {std::log(0.3)};
    hp.log_outputscale = 0.0;
    hp.log_noise = std::log(1e-4);
    return hp;
}

TEST(GpModelExtend, MatchesFullFitAcrossHistoryLengths)
{
    SearchSpace s = one_d_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    smooth_history(28, &xs, &ys);

    for (std::size_t base : {5u, 10u, 20u}) {
        GpModel inc(s);
        inc.fit_with_hyperparams(
            {xs.begin(), xs.begin() + static_cast<long>(base)},
            {ys.begin(), ys.begin() + static_cast<long>(base)}, fixed_hp());
        for (std::size_t i = base; i < xs.size(); ++i)
            ASSERT_TRUE(inc.extend(xs[i], ys[i])) << "extend " << i;

        GpModel full(s);
        full.fit_with_hyperparams(xs, ys, fixed_hp());

        // The two models share hyperparameters and training data; they
        // differ only in the output standardizer (fit on the base prefix
        // vs the full history — extend intentionally freezes it between
        // refits). With prefix statistics close to full-history
        // statistics the models interpolate the same data, so held-out
        // predictions agree far below the function's scale (~1.3); 0.02
        // bounds the standardizer-induced drift with margin.
        for (double x : {0.07, 0.33, 0.52, 0.71, 0.96}) {
            GpPrediction pi = inc.predict(cfg1(x));
            GpPrediction pf = full.predict(cfg1(x));
            EXPECT_NEAR(pi.mean, pf.mean, 0.02) << "base " << base;
            EXPECT_NEAR(std::sqrt(pi.var), std::sqrt(pf.var), 0.02)
                << "base " << base;
        }
        // Training points are interpolated through the extended factor.
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(inc.predict(xs[i]).mean, ys[i], 0.02);
        // The marginal-likelihood score driving the tuner's drift-based
        // refit check is scale-sensitive (the frozen standardizer enters
        // the data-fit term quadratically), so it tracks more loosely than
        // the predictions — but must stay well inside the tuner's default
        // refit_nll_drift of 1.0, or drift refits would fire constantly.
        EXPECT_NEAR(inc.data_nll_per_point(), full.data_nll_per_point(), 0.75);
    }
}

TEST(GpModelExtend, TruncateRestoresExactPosterior)
{
    SearchSpace s = one_d_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    smooth_history(12, &xs, &ys);

    GpModel gp(s);
    gp.fit_with_hyperparams(
        {xs.begin(), xs.begin() + 8}, {ys.begin(), ys.begin() + 8},
        fixed_hp());
    std::vector<GpPrediction> before;
    for (double x : {0.1, 0.4, 0.8})
        before.push_back(gp.predict(cfg1(x)));

    for (std::size_t i = 8; i < 12; ++i)
        ASSERT_TRUE(gp.extend(xs[i], ys[i]));
    gp.truncate(8);

    // Appends never touch the leading factor block and truncate recomputes
    // alpha from the same inputs, so restoration is bitwise — this is what
    // lets the tuner roll fantasy observations back between suggests.
    std::size_t k = 0;
    for (double x : {0.1, 0.4, 0.8}) {
        GpPrediction after = gp.predict(cfg1(x));
        EXPECT_DOUBLE_EQ(after.mean, before[k].mean);
        EXPECT_DOUBLE_EQ(after.var, before[k].var);
        ++k;
    }
}

TEST(GpModelExtend, DuplicatePointIsAbsorbed)
{
    // Appending an exact duplicate of a training point borders the kernel
    // matrix with a nearly dependent row; the noise term (plus, if needed,
    // extend's escalating extra jitter) must keep the factor viable.
    SearchSpace s = one_d_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    smooth_history(8, &xs, &ys);
    GpModel gp(s);
    gp.fit_with_hyperparams(xs, ys, fixed_hp());
    ASSERT_TRUE(gp.extend(xs[3], ys[3]));
    GpPrediction p = gp.predict(cfg1(0.5));
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.var));
    EXPECT_GE(p.var, 0.0);
}

TEST(GpModelExtend, RefusesBeforeFit)
{
    SearchSpace s = one_d_space();
    GpModel gp(s);
    EXPECT_FALSE(gp.fitted());
    EXPECT_FALSE(gp.extend(cfg1(0.5), 1.0));
    std::vector<Configuration> xs;
    std::vector<double> ys;
    smooth_history(4, &xs, &ys);
    gp.fit_with_hyperparams(xs, ys, fixed_hp());
    EXPECT_TRUE(gp.fitted());
    EXPECT_TRUE(gp.extend(cfg1(0.9), 0.7));
}

TEST(GpModel, NaiveFitStillWorks)
{
    // BaCO--'s single-start fit must remain functional.
    SearchSpace s = one_d_space();
    GpOptions opt;
    opt.advanced_fit = false;
    opt.use_priors = false;
    GpModel gp(s, opt);
    RngEngine rng(10);
    std::vector<Configuration> xs{cfg1(0.0), cfg1(0.5), cfg1(1.0)};
    std::vector<double> ys{0.0, 1.0, 0.0};
    gp.fit(xs, ys, rng);
    EXPECT_NEAR(gp.predict(cfg1(0.5)).mean, 1.0, 0.2);
}

}  // namespace
}  // namespace baco
