// Executable sparse kernels: correctness against dense references, and the
// TACO guarantee that schedules never change results.

#include <gtest/gtest.h>

#include "taco/generators.hpp"
#include "taco/kernels.hpp"

namespace baco::taco {
namespace {

CsrMatrix
small_matrix(RngEngine& rng, int rows = 40, int cols = 30, int nnz = 200)
{
    std::vector<std::array<int, 2>> coords;
    std::vector<double> vals;
    for (int i = 0; i < nnz; ++i) {
        coords.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(rows))),
                          static_cast<int>(rng.index(static_cast<std::size_t>(cols)))});
        vals.push_back(rng.uniform(-1, 1));
    }
    return csr_from_triplets(rows, cols, std::move(coords), std::move(vals));
}

Matrix
random_dense(RngEngine& rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = rng.uniform(-1, 1);
    return m;
}

TEST(CsrFromTriplets, MergesDuplicatesAndSorts)
{
    CsrMatrix m = csr_from_triplets(
        3, 3, {{1, 2}, {0, 1}, {1, 2}, {2, 0}}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(m.nnz(), 3);
    Matrix d = m.to_dense();
    EXPECT_DOUBLE_EQ(d(1, 2), 4.0);  // merged 1 + 3
    EXPECT_DOUBLE_EQ(d(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(d(2, 0), 4.0);
    // Row pointers are monotone and end at nnz.
    for (std::size_t r = 0; r + 1 < m.row_ptr.size(); ++r)
        EXPECT_LE(m.row_ptr[r], m.row_ptr[r + 1]);
    EXPECT_EQ(m.row_ptr.back(), m.nnz());
}

TEST(Spmv, MatchesDenseReference)
{
    RngEngine rng(1);
    CsrMatrix b = small_matrix(rng);
    std::vector<double> c(static_cast<std::size_t>(b.cols));
    for (double& v : c)
        v = rng.uniform(-1, 1);
    std::vector<double> a = spmv(b, c);
    std::vector<double> ref = mat_vec(b.to_dense(), c);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], ref[i], 1e-10);
}

/** Property sweep: every schedule produces identical SpMV results. */
class SpmvScheduleProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpmvScheduleProperty, ScheduleInvariance)
{
    auto [chunk, unroll] = GetParam();
    RngEngine rng(2);
    CsrMatrix b = small_matrix(rng);
    std::vector<double> c(static_cast<std::size_t>(b.cols));
    for (double& v : c)
        v = rng.uniform(-1, 1);
    ExecSchedule s;
    s.row_chunk = chunk;
    s.unroll = unroll;
    std::vector<double> got = spmv_scheduled(b, c, s);
    std::vector<double> ref = spmv(b, c);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], ref[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SpmvScheduleProperty,
    ::testing::Combine(::testing::Values(1, 3, 16, 64, 1000),
                       ::testing::Values(1, 2, 4, 7)));

TEST(Spmm, MatchesDenseReference)
{
    RngEngine rng(3);
    CsrMatrix b = small_matrix(rng);
    Matrix c = random_dense(rng, static_cast<std::size_t>(b.cols), 8);
    Matrix a = spmm(b, c);
    Matrix ref = mat_mat(b.to_dense(), c);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_NEAR(a(i, j), ref(i, j), 1e-10);
}

class SpmmScheduleProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpmmScheduleProperty, ScheduleInvariance)
{
    auto [chunk, tile] = GetParam();
    RngEngine rng(4);
    CsrMatrix b = small_matrix(rng);
    Matrix c = random_dense(rng, static_cast<std::size_t>(b.cols), 10);
    ExecSchedule s;
    s.row_chunk = chunk;
    s.col_tile = tile;
    Matrix got = spmm_scheduled(b, c, s);
    Matrix ref = spmm(b, c);
    for (std::size_t i = 0; i < got.rows(); ++i)
        for (std::size_t j = 0; j < got.cols(); ++j)
            EXPECT_NEAR(got(i, j), ref(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SpmmScheduleProperty,
    ::testing::Combine(::testing::Values(1, 7, 64),
                       ::testing::Values(1, 3, 10, 100)));

TEST(Sddmm, MatchesDenseReference)
{
    RngEngine rng(5);
    CsrMatrix b = small_matrix(rng);
    Matrix c = random_dense(rng, static_cast<std::size_t>(b.rows), 6);
    Matrix d = random_dense(rng, static_cast<std::size_t>(b.cols), 6);
    std::vector<double> out = sddmm(b, c, d);
    // Reference: iterate entries.
    for (int i = 0; i < b.rows; ++i) {
        for (int p = b.row_ptr[static_cast<std::size_t>(i)];
             p < b.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
            auto q = static_cast<std::size_t>(p);
            auto j = static_cast<std::size_t>(b.col_idx[q]);
            double acc = 0.0;
            for (std::size_t k = 0; k < 6; ++k)
                acc += c(static_cast<std::size_t>(i), k) * d(j, k);
            EXPECT_NEAR(out[q], b.vals[q] * acc, 1e-10);
        }
    }
}

TEST(Sddmm, ScheduledMatchesReference)
{
    RngEngine rng(6);
    CsrMatrix b = small_matrix(rng);
    Matrix c = random_dense(rng, static_cast<std::size_t>(b.rows), 12);
    Matrix d = random_dense(rng, static_cast<std::size_t>(b.cols), 12);
    std::vector<double> ref = sddmm(b, c, d);
    for (int tile : {1, 5, 12, 64}) {
        ExecSchedule s;
        s.col_tile = tile;
        s.row_chunk = 16;
        std::vector<double> got = sddmm_scheduled(b, c, d, s);
        for (std::size_t q = 0; q < ref.size(); ++q)
            EXPECT_NEAR(got[q], ref[q], 1e-10);
    }
}

TEST(Ttv, MatchesExplicitSum)
{
    RngEngine rng(7);
    TensorProfile p = profile("random1");
    CooTensor3 b = generate_tensor3(p, 0.0005, rng);
    std::vector<double> c(static_cast<std::size_t>(b.dims[2]));
    for (double& v : c)
        v = rng.uniform(-1, 1);
    Matrix a = ttv(b, c);
    // Explicit accumulation over entries.
    Matrix ref(static_cast<std::size_t>(b.dims[0]),
               static_cast<std::size_t>(b.dims[1]));
    for (const Coord3& e : b.entries)
        ref(static_cast<std::size_t>(e.idx[0]),
            static_cast<std::size_t>(e.idx[1])) +=
            e.val * c[static_cast<std::size_t>(e.idx[2])];
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_DOUBLE_EQ(a(i, j), ref(i, j));
}

TEST(Mttkrp4, ScheduledMatchesReference)
{
    RngEngine rng(8);
    TensorProfile p = profile("uber");
    CooTensor4 b = generate_tensor4(p, 0.001, rng);
    std::size_t rank = 6;
    Matrix c = random_dense(rng, static_cast<std::size_t>(b.dims[1]), rank);
    Matrix d = random_dense(rng, static_cast<std::size_t>(b.dims[2]), rank);
    Matrix e = random_dense(rng, static_cast<std::size_t>(b.dims[3]), rank);
    Matrix ref = mttkrp4(b, c, d, e);
    for (int tile : {1, 2, 6}) {
        ExecSchedule s;
        s.col_tile = tile;
        Matrix got = mttkrp4_scheduled(b, c, d, e, s);
        for (std::size_t i = 0; i < ref.rows(); ++i)
            for (std::size_t j = 0; j < ref.cols(); ++j)
                EXPECT_NEAR(got(i, j), ref(i, j), 1e-10);
    }
}

TEST(Generators, ProfilesMatchTable4Metadata)
{
    // Spot-check the published dimensions/nonzeros carried by profiles.
    const TensorProfile& enron = profile("email-Enron");
    EXPECT_EQ(enron.dims[0], 36692);
    EXPECT_EQ(enron.nnz, 367662);
    const TensorProfile& uber = profile("uber");
    EXPECT_EQ(uber.order, 4);
    EXPECT_EQ(uber.dims[3], 1717);
    const TensorProfile& fb = profile("facebook");
    EXPECT_EQ(fb.order, 3);
    EXPECT_EQ(fb.nnz, 737934);
    EXPECT_THROW(profile("nonexistent"), std::runtime_error);
}

TEST(Generators, MaterializedMatrixHonoursScaleAndPattern)
{
    RngEngine rng(9);
    const TensorProfile& p = profile("laminar_duct3D");
    CsrMatrix m = generate_matrix(p, 0.01, rng);
    EXPECT_NEAR(m.rows, p.dims[0] * 0.01, 2.0);
    EXPECT_GT(m.nnz(), 0);
    // Banded pattern: most entries near the diagonal.
    int near = 0;
    for (int i = 0; i < m.rows; ++i)
        for (int q = m.row_ptr[static_cast<std::size_t>(i)];
             q < m.row_ptr[static_cast<std::size_t>(i) + 1]; ++q)
            near += std::abs(m.col_idx[static_cast<std::size_t>(q)] - i) <
                            m.cols / 4
                        ? 1
                        : 0;
    EXPECT_GT(near, m.nnz() * 3 / 4);
}

TEST(Generators, PowerLawSkewsRowDegrees)
{
    RngEngine rng(10);
    CsrMatrix skewed = generate_matrix(profile("email-Enron"), 0.02, rng);
    // Max row degree should be far above the average for a power-law graph.
    int max_deg = 0;
    for (int i = 0; i < skewed.rows; ++i)
        max_deg = std::max(max_deg,
                           skewed.row_ptr[static_cast<std::size_t>(i) + 1] -
                               skewed.row_ptr[static_cast<std::size_t>(i)]);
    double avg = static_cast<double>(skewed.nnz()) / skewed.rows;
    EXPECT_GT(max_deg, 10 * avg);
}

}  // namespace
}  // namespace baco::taco
