# Negative-compile proofs for the thread-safety annotations
# (src/core/thread_annotations.hpp), run at configure time via
# try_compile:
#
#   positive.cpp          correct locking       -> MUST compile
#   unguarded_access.cpp  guarded field, no lock -> MUST NOT compile
#   missing_requires.cpp  REQUIRES fn, no lock   -> MUST NOT compile
#
# The capability analysis only exists in clang, so under any other
# compiler the checks self-skip (the annotations are no-ops there).
# scripts/check.sh --stage tidy configures with clang and therefore
# exercises them on every tidy run; if a negative case ever starts
# compiling, configuration fails hard — annotations that stopped
# rejecting bad code are worse than none, because they document a
# guarantee that is no longer checked.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS
    "thread-safety negative-compile checks: skipped "
    "(${CMAKE_CXX_COMPILER_ID} has no capability analysis; run "
    "scripts/check.sh --stage tidy with clang available)")
  return()
endif()

set(BACO_SA_SRC_DIR ${CMAKE_CURRENT_SOURCE_DIR}/tests/static_analysis)
set(BACO_SA_BIN_DIR ${CMAKE_CURRENT_BINARY_DIR}/static_analysis_checks)
set(BACO_SA_FLAGS
    -Wthread-safety
    -Werror=thread-safety-analysis
    -Werror=thread-safety-attributes
    -Werror=thread-safety-precise)

# try_compile needs project context (it configures a one-file child
# project), which is why this file is include()d from CMakeLists.txt
# instead of running in script mode.
macro(baco_sa_try_compile result_var source_file)
  try_compile(${result_var}
    ${BACO_SA_BIN_DIR}/${source_file}
    ${BACO_SA_SRC_DIR}/${source_file}
    COMPILE_DEFINITIONS "${BACO_SA_FLAGS}"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=17"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    OUTPUT_VARIABLE ${result_var}_output)
endmacro()

baco_sa_try_compile(BACO_SA_POSITIVE positive.cpp)
if(NOT BACO_SA_POSITIVE)
  message(FATAL_ERROR
    "thread-safety check: the correctly locked control case "
    "(tests/static_analysis/positive.cpp) failed to compile — the "
    "annotation macros or the checker flags are broken:\n"
    "${BACO_SA_POSITIVE_output}")
endif()

baco_sa_try_compile(BACO_SA_UNGUARDED unguarded_access.cpp)
if(BACO_SA_UNGUARDED)
  message(FATAL_ERROR
    "thread-safety check: unguarded access to a BACO_GUARDED_BY field "
    "(tests/static_analysis/unguarded_access.cpp) COMPILED — the "
    "capability analysis is no longer rejecting bad code")
endif()

baco_sa_try_compile(BACO_SA_MISSING_REQUIRES missing_requires.cpp)
if(BACO_SA_MISSING_REQUIRES)
  message(FATAL_ERROR
    "thread-safety check: calling a BACO_REQUIRES function without the "
    "lock (tests/static_analysis/missing_requires.cpp) COMPILED — the "
    "capability analysis is no longer rejecting bad code")
endif()

message(STATUS
  "thread-safety negative-compile checks: passed "
  "(positive compiles; unguarded_access and missing_requires rejected)")
