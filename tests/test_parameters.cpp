// Parameter type behaviour: sampling, neighbours, distances, encodings.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/parameter.hpp"

namespace baco {
namespace {

TEST(RealParameter, SampleWithinBoundsAndLogSampling)
{
    RngEngine rng(1);
    RealParameter lin("x", 0.0, 10.0);
    for (int i = 0; i < 200; ++i) {
        double v = as_real(lin.sample(rng));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
    }
    RealParameter lg("y", 1.0, 1024.0, /*log_scale=*/true);
    int below32 = 0;
    for (int i = 0; i < 2000; ++i)
        below32 += as_real(lg.sample(rng)) < 32.0 ? 1 : 0;
    // Log-uniform: half the mass below the geometric midpoint (32).
    EXPECT_NEAR(below32 / 2000.0, 0.5, 0.05);
}

TEST(RealParameter, LogDistanceMatchesPaperExample)
{
    // Sec. 4.1: tiles 2 vs 4 should be as similar as 512 vs 1024.
    RealParameter p("tile", 1.0, 4096.0, true);
    double d_small = p.distance(ParamValue{2.0}, ParamValue{4.0});
    double d_large = p.distance(ParamValue{512.0}, ParamValue{1024.0});
    EXPECT_NEAR(d_small, d_large, 1e-12);
    double d_close = p.distance(ParamValue{512.0}, ParamValue{514.0});
    EXPECT_LT(d_close, d_small / 10.0);
}

TEST(IntegerParameter, NeighborsStepByOne)
{
    RngEngine rng(2);
    IntegerParameter p("n", 0, 5);
    auto nb = p.neighbors(ParamValue{std::int64_t{3}}, rng);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_EQ(as_int(nb[0]), 2);
    EXPECT_EQ(as_int(nb[1]), 4);
    // Boundary values only have one neighbour.
    EXPECT_EQ(p.neighbors(ParamValue{std::int64_t{0}}, rng).size(), 1u);
    EXPECT_EQ(p.neighbors(ParamValue{std::int64_t{5}}, rng).size(), 1u);
}

TEST(IntegerParameter, EnumerationAndIndexOfRoundTrip)
{
    IntegerParameter p("n", -2, 2);
    ASSERT_EQ(p.num_values(), 5u);
    for (std::size_t i = 0; i < p.num_values(); ++i)
        EXPECT_EQ(p.index_of(p.value_at(i)), i);
    EXPECT_EQ(p.index_of(ParamValue{std::int64_t{99}}), p.num_values());
}

TEST(OrdinalParameter, LogDistanceOnExponentialValues)
{
    OrdinalParameter p("tile", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
                       /*log_scale=*/true);
    double d1 = p.distance(ParamValue{std::int64_t{2}},
                           ParamValue{std::int64_t{4}});
    double d2 = p.distance(ParamValue{std::int64_t{512}},
                           ParamValue{std::int64_t{1024}});
    EXPECT_NEAR(d1, d2, 1e-12);
    EXPECT_NEAR(p.distance(ParamValue{std::int64_t{2}},
                           ParamValue{std::int64_t{1024}}),
                1.0, 1e-12);
}

TEST(OrdinalParameter, NeighborsAreAdjacentValues)
{
    RngEngine rng(3);
    OrdinalParameter p("tile", {1, 2, 4, 8});
    auto nb = p.neighbors(ParamValue{std::int64_t{2}}, rng);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_EQ(as_int(nb[0]), 1);
    EXPECT_EQ(as_int(nb[1]), 4);
}

TEST(CategoricalParameter, HammingDistanceAndOneHot)
{
    CategoricalParameter p("sched", {"static", "dynamic", "guided"});
    EXPECT_EQ(p.distance(p.value_at(0), p.value_at(0)), 0.0);
    EXPECT_EQ(p.distance(p.value_at(0), p.value_at(2)), 1.0);

    std::vector<double> feat;
    p.encode(p.value_at(1), feat);
    ASSERT_EQ(feat.size(), 3u);
    EXPECT_EQ(feat[0], 0.0);
    EXPECT_EQ(feat[1], 1.0);
    EXPECT_EQ(feat[2], 0.0);
    EXPECT_EQ(p.value_to_string(p.value_at(2)), "guided");
}

TEST(CategoricalParameter, NeighborsAreAllOtherCategories)
{
    RngEngine rng(4);
    CategoricalParameter p("c", {"a", "b", "c", "d"});
    auto nb = p.neighbors(p.value_at(1), rng);
    EXPECT_EQ(nb.size(), 3u);
}

TEST(PermutationParameter, EnumerationIsLexicographicAndBijective)
{
    PermutationParameter p("perm", 4);
    ASSERT_EQ(p.num_values(), 24u);
    EXPECT_EQ(as_permutation(p.value_at(0)), (Permutation{0, 1, 2, 3}));
    EXPECT_EQ(as_permutation(p.value_at(23)), (Permutation{3, 2, 1, 0}));
    std::set<Permutation> seen;
    for (std::size_t i = 0; i < 24; ++i) {
        ParamValue v = p.value_at(i);
        EXPECT_EQ(p.index_of(v), i);
        seen.insert(as_permutation(v));
    }
    EXPECT_EQ(seen.size(), 24u);
}

TEST(PermutationParameter, NeighborsIncludeAdjacentTranspositions)
{
    RngEngine rng(5);
    PermutationParameter p("perm", 4);
    Permutation base{0, 1, 2, 3};
    auto nb = p.neighbors(ParamValue{base}, rng);
    // 3 adjacent transpositions + up to 2 random swaps.
    EXPECT_GE(nb.size(), 3u);
    EXPECT_EQ(as_permutation(nb[0]), (Permutation{1, 0, 2, 3}));
    EXPECT_EQ(as_permutation(nb[1]), (Permutation{0, 2, 1, 3}));
    EXPECT_EQ(as_permutation(nb[2]), (Permutation{0, 1, 3, 2}));
}

TEST(PermutationParameter, MetricSwitchChangesDistance)
{
    PermutationParameter p("perm", 4, PermutationMetric::kSpearman);
    Permutation a{0, 1, 2, 3}, b{1, 0, 2, 3};
    double spearman = p.distance(ParamValue{a}, ParamValue{b});
    p.set_metric(PermutationMetric::kNaive);
    double naive = p.distance(ParamValue{a}, ParamValue{b});
    EXPECT_LT(spearman, naive);  // one swap is "close" under Spearman
    EXPECT_EQ(naive, 1.0);
}

TEST(PermutationParameter, NumericValueThrows)
{
    PermutationParameter p("perm", 3);
    EXPECT_THROW(p.numeric_value(p.value_at(0)), std::runtime_error);
}

TEST(ParamValueHelpers, EqualityAndHash)
{
    Configuration a{ParamValue{1.5}, ParamValue{std::int64_t{3}},
                    ParamValue{Permutation{0, 2, 1}}};
    Configuration b = a;
    EXPECT_TRUE(configs_equal(a, b));
    EXPECT_EQ(config_hash(a), config_hash(b));
    b[1] = std::int64_t{4};
    EXPECT_FALSE(configs_equal(a, b));
    EXPECT_NE(config_hash(a), config_hash(b));
}

}  // namespace
}  // namespace baco
