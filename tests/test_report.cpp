// Text reporting helpers used by the bench harnesses.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "suite/report.hpp"

namespace baco::suite {
namespace {

TEST(Fmt, NumbersAndSpecials)
{
    EXPECT_EQ(fmt(1.234, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "-");
    EXPECT_EQ(fmt(std::nan("")), "-");
}

TEST(Fmt, Factors)
{
    EXPECT_EQ(fmt_factor(3.333, 2), "3.33x");
    EXPECT_EQ(fmt_factor(-1.0), "-");
    EXPECT_EQ(fmt_factor(std::numeric_limits<double>::infinity()), "-");
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.add_row({"short", "1"});
    t.add_row({"a-much-longer-name", "2.5"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header, rule, two rows.
    int newlines = 0;
    for (char c : out)
        newlines += c == '\n' ? 1 : 0;
    EXPECT_EQ(newlines, 4);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    // The name column is padded to the widest cell, so the value column of
    // the "short" row starts at the same offset as the header's.
    std::size_t header_line_start = 0;
    std::size_t value_col = out.find("value");
    std::size_t short_row_start = out.find("short");
    std::size_t short_value = out.find('1', short_row_start);
    std::size_t row_start = out.rfind('\n', short_value) + 1;
    EXPECT_EQ(short_value - row_start, value_col - header_line_start);
}

TEST(TextTable, ShortRowsArePadded)
{
    TextTable t({"a", "b", "c"});
    t.add_row({"only-one"});
    std::ostringstream os;
    t.print(os);  // must not crash; missing cells render empty
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    print_banner(os, "Hello Tables");
    EXPECT_NE(os.str().find("Hello Tables"), std::string::npos);
    EXPECT_NE(os.str().find("======"), std::string::npos);
}

}  // namespace
}  // namespace baco::suite
