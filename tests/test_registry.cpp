// Registry and Table 3 metadata consistency across the whole suite.

#include <gtest/gtest.h>

#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco::suite {
namespace {

TEST(Registry, TwentyFiveInstances)
{
    EXPECT_EQ(all_benchmarks().size(), 25u);
    EXPECT_EQ(benchmarks_for("TACO").size(), 15u);
    EXPECT_EQ(benchmarks_for("RISE").size(), 7u);
    EXPECT_EQ(benchmarks_for("HPVM2FPGA").size(), 3u);
}

TEST(Registry, LookupByName)
{
    const Benchmark& b = find_benchmark("SpMM/scircuit");
    EXPECT_EQ(b.framework, "TACO");
    EXPECT_THROW(find_benchmark("nope"), std::runtime_error);
}

TEST(Registry, LookupMissSuggestsClosestNames)
{
    // A near-miss names the real benchmark instead of a bare not-found.
    try {
        find_benchmark("SpMM/scirciut");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown benchmark 'SpMM/scirciut'"),
                  std::string::npos);
        EXPECT_NE(msg.find("did you mean"), std::string::npos);
        EXPECT_NE(msg.find("'SpMM/scircuit'"), std::string::npos);
    }
    // A hopeless miss suggests nothing rather than a random name.
    try {
        find_benchmark("zzzzzz");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()).find("did you mean"),
                  std::string::npos);
    }
}

TEST(Registry, SpaceInfoMatchesTable3Structure)
{
    // Spot-check the Table 3 rows our substitution preserves exactly:
    // dimensions, parameter-type mix, constraint classes and budgets.
    struct Expect {
      const char* name;
      std::size_t dims;
      const char* types;
      const char* constraints;
      int budget;
    };
    const Expect expectations[] = {
        {"SpMV/cage12", 7, "O/C/P", "-", 70},
        {"SpMM/scircuit", 6, "O/C/P", "K", 60},
        {"SDDMM/email-Enron", 6, "O/C/P", "K", 60},
        {"TTV/facebook", 7, "O/C/P", "K/H", 70},
        {"MTTKRP/uber", 6, "O/C/P", "K", 60},
        {"MM_CPU", 5, "O/P", "K/H", 100},
        {"MM_GPU", 10, "O", "K/H", 120},
        {"Asum_GPU", 5, "O", "K", 60},
        {"Scal_GPU", 7, "O", "K/H", 60},
        {"K-means_GPU", 4, "O", "K/H", 60},
        {"Harris_GPU", 7, "O", "K", 100},
        {"Stencil_GPU", 4, "O", "K", 60},
        {"BFS", 4, "I/C", "H", 20},
        {"Audio", 15, "I/C", "H", 60},
        {"PreEuler", 7, "I/C", "H", 60},
    };
    for (const Expect& e : expectations) {
        SpaceInfo info = space_info(find_benchmark(e.name));
        EXPECT_EQ(info.dims, e.dims) << e.name;
        EXPECT_EQ(info.param_types, e.types) << e.name;
        EXPECT_EQ(info.constraint_types, e.constraints) << e.name;
        EXPECT_EQ(info.full_budget, e.budget) << e.name;
    }
}

TEST(Registry, FeasibleNeverExceedsDense)
{
    for (const Benchmark& b : all_benchmarks()) {
        SpaceInfo info = space_info(b);
        EXPECT_GT(info.feasible_size, 0.0) << b.name;
        EXPECT_LE(info.feasible_size, info.dense_size) << b.name;
        // Known constraints genuinely prune the space where declared.
        if (info.constraint_types.find('K') != std::string::npos) {
            EXPECT_LT(info.feasible_size, info.dense_size) << b.name;
        }
    }
}

TEST(Registry, BudgetTiers)
{
    const Benchmark& b = find_benchmark("MM_GPU");
    EXPECT_EQ(b.tiny_budget(), 40);
    EXPECT_EQ(b.small_budget(), 80);
    const Benchmark& bfs = find_benchmark("BFS");
    EXPECT_EQ(bfs.tiny_budget(), 6);  // the paper's footnote: BFS tiny = 6
}

TEST(Runner, MethodNames)
{
    EXPECT_EQ(method_name(Method::kBaco), "BaCO");
    EXPECT_EQ(method_name(Method::kAtfOpenTuner), "ATF");
    EXPECT_EQ(headline_methods().size(), 5u);
}

TEST(Runner, EvalsToReach)
{
    std::vector<double> traj{5.0, 3.0, 3.0, 1.0};
    EXPECT_EQ(evals_to_reach(traj, 4.0), 2);
    EXPECT_EQ(evals_to_reach(traj, 1.0), 4);
    EXPECT_EQ(evals_to_reach(traj, 0.5), -1);
}

TEST(Runner, RepStatsAggregation)
{
    RepStats stats;
    stats.trajectories = {{4.0, 2.0}, {8.0, 6.0}};
    EXPECT_DOUBLE_EQ(stats.mean_best_at(1), 6.0);
    EXPECT_DOUBLE_EQ(stats.mean_best_at(2), 4.0);
    // rel-to-reference with ref 4: (4/2 + 4/6)/2.
    EXPECT_NEAR(stats.mean_rel_to_reference(4.0, 2), (2.0 + 4.0 / 6.0) / 2,
                1e-12);
    EXPECT_EQ(stats.count_reached(6.0), 2);
    EXPECT_EQ(stats.count_reached(2.0), 1);
    std::vector<double> mean = stats.mean_trajectory();
    ASSERT_EQ(mean.size(), 2u);
    EXPECT_DOUBLE_EQ(mean[0], 6.0);
    EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(Runner, AllMethodsRunOnASmallBenchmark)
{
    const Benchmark& b = find_benchmark("BFS");
    for (Method m : {Method::kBaco, Method::kAtfOpenTuner, Method::kYtopt,
                     Method::kUniform, Method::kCotSampling}) {
        TuningHistory h = run_method(b, m, 10, 42);
        EXPECT_EQ(h.size(), 10u) << method_name(m);
    }
}

}  // namespace
}  // namespace baco::suite
