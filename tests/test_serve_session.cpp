// The multi-session manager and serve loop: protocol-driven tuning
// sessions, idempotent retries, concurrent sessions from many threads,
// idle eviction, the version handshake, and crash/resume recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

Message
open_request(const std::string& name, const std::string& method, int budget,
             std::uint64_t seed, bool resume = false)
{
    Message m;
    m.type = MsgType::kOpenSession;
    m.id = 1;
    m.session = name;
    m.benchmark = kBench;
    m.method = method;
    m.budget = budget;
    m.doe = 0;  // benchmark default, matching run_method_batched
    m.seed = seed;
    m.resume = resume;
    return m;
}

/**
 * Drive a session through the ask-tell protocol exchange, evaluating
 * client-side exactly as a remote evaluation farm would. Returns the
 * final evals count.
 */
std::uint64_t
drive_session(SessionManager& sm, const std::string& name, int batch,
              int max_evals = -1)
{
    const Benchmark& bench = suite::find_benchmark(kBench);
    std::optional<SessionInfo> info = sm.info(name);
    EXPECT_TRUE(info.has_value());
    std::uint64_t evals = info->evals;
    int done = 0;
    for (;;) {
        if (max_evals >= 0 && done >= max_evals)
            break;
        Message ask;
        ask.type = MsgType::kSuggest;
        ask.session = name;
        ask.n = batch;
        Message configs = sm.handle(ask);
        EXPECT_EQ(configs.type, MsgType::kConfigs) << configs.text;
        if (configs.configs.empty())
            break;
        Message tell;
        tell.type = MsgType::kObserve;
        tell.session = name;
        for (std::size_t i = 0; i < configs.configs.size(); ++i) {
            ObservedResult r;
            r.config = configs.configs[i];
            EvalResult res = evaluate_on(bench, r.config, info->seed,
                                         configs.index + i);
            r.value = res.value;
            r.feasible = res.feasible;
            tell.results.push_back(std::move(r));
        }
        Message ok = sm.handle(tell);
        EXPECT_EQ(ok.type, MsgType::kOk) << ok.text;
        evals = ok.evals;
        done += static_cast<int>(configs.configs.size());
    }
    return evals;
}

TEST(ServeSession, ProtocolDrivenRunMatchesDirectRun)
{
    SessionManager sm;
    Message opened = sm.handle(open_request("s1", "Uniform", 12, 33));
    ASSERT_EQ(opened.type, MsgType::kOpened) << opened.text;
    EXPECT_EQ(opened.evals, 0u);
    EXPECT_FALSE(opened.resumed);

    EXPECT_EQ(drive_session(sm, "s1", 3), 12u);
    std::optional<SessionInfo> info = sm.info("s1");
    ASSERT_TRUE(info.has_value());

    // The protocol exchange is the EvalEngine exchange over frames: the
    // session history must match the batched in-process run exactly.
    const Benchmark& bench = suite::find_benchmark(kBench);
    EvalEngineOptions eopt;
    eopt.batch_size = 3;
    TuningHistory reference = suite::run_method_batched(
        bench, suite::Method::kUniform, 12, 33, eopt);
    EXPECT_EQ(info->evals, reference.size());
    EXPECT_EQ(info->best, reference.best_value);
}

TEST(ServeSession, OpenRejectsBadRequests)
{
    SessionManager sm;
    Message bad_name = open_request("no/slashes", "BaCO", 10, 1);
    EXPECT_EQ(sm.handle(bad_name).type, MsgType::kError);

    Message bad_bench = open_request("ok", "BaCO", 10, 1);
    bad_bench.benchmark = "NoSuch/benchmark";
    EXPECT_EQ(sm.handle(bad_bench).type, MsgType::kError);

    Message bad_method = open_request("ok", "NoSuchMethod", 10, 1);
    EXPECT_EQ(sm.handle(bad_method).type, MsgType::kError);

    ASSERT_EQ(sm.handle(open_request("ok", "BaCO", 10, 1)).type,
              MsgType::kOpened);
    // Double open of a live session is an error.
    EXPECT_EQ(sm.handle(open_request("ok", "BaCO", 10, 1)).type,
              MsgType::kError);
    EXPECT_EQ(sm.size(), 1u);
}

TEST(ServeSession, SuggestIsIdempotentAndObserveValidatesBatch)
{
    SessionManager sm;
    ASSERT_EQ(sm.handle(open_request("s", "Uniform", 10, 7)).type,
              MsgType::kOpened);

    Message ask;
    ask.type = MsgType::kSuggest;
    ask.session = "s";
    ask.n = 3;
    Message first = sm.handle(ask);
    ASSERT_EQ(first.type, MsgType::kConfigs);
    ASSERT_EQ(first.configs.size(), 3u);

    // A retried suggest re-sends the same outstanding batch (lost-reply
    // recovery), without advancing the tuner.
    Message retry = sm.handle(ask);
    ASSERT_EQ(retry.type, MsgType::kConfigs);
    ASSERT_EQ(retry.configs.size(), 3u);
    EXPECT_EQ(retry.index, first.index);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_TRUE(configs_equal(retry.configs[i], first.configs[i]));

    // Observing results for the wrong configs is rejected.
    Message wrong;
    wrong.type = MsgType::kObserve;
    wrong.session = "s";
    ObservedResult r;
    r.config = first.configs[0];
    r.value = 1.0;
    wrong.results = {r};
    EXPECT_EQ(sm.handle(wrong).type, MsgType::kError);  // size mismatch

    // Observing with no batch outstanding is rejected too.
    Message ok_observe;
    ok_observe.type = MsgType::kObserve;
    ok_observe.session = "s";
    const Benchmark& bench = suite::find_benchmark(kBench);
    std::optional<SessionInfo> info = sm.info("s");
    for (std::size_t i = 0; i < first.configs.size(); ++i) {
        ObservedResult obs;
        obs.config = first.configs[i];
        EvalResult res = evaluate_on(bench, obs.config, info->seed,
                                     first.index + i);
        obs.value = res.value;
        obs.feasible = res.feasible;
        ok_observe.results.push_back(std::move(obs));
    }
    EXPECT_EQ(sm.handle(ok_observe).type, MsgType::kOk);
    EXPECT_EQ(sm.handle(ok_observe).type, MsgType::kError);
}

TEST(ServeSession, ConcurrentSessionsStayIsolated)
{
    // Many threads hammer their own sessions through one manager; each
    // history must match its serial single-session reference exactly.
    SessionManager sm;
    const int kThreads = 8;
    const int kBudget = 10;

    for (int t = 0; t < kThreads; ++t) {
        Message opened = sm.handle(open_request(
            "hammer-" + std::to_string(t), "Uniform", kBudget,
            static_cast<std::uint64_t>(100 + t)));
        ASSERT_EQ(opened.type, MsgType::kOpened) << opened.text;
    }

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&sm, t] {
            drive_session(sm, "hammer-" + std::to_string(t),
                          1 + t % 3);
        });
    }
    for (std::thread& t : threads)
        t.join();

    const Benchmark& bench = suite::find_benchmark(kBench);
    for (int t = 0; t < kThreads; ++t) {
        std::optional<SessionInfo> info =
            sm.info("hammer-" + std::to_string(t));
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->evals, static_cast<std::uint64_t>(kBudget));
        EvalEngineOptions eopt;
        eopt.batch_size = 1 + t % 3;
        TuningHistory reference = suite::run_method_batched(
            bench, suite::Method::kUniform, kBudget,
            static_cast<std::uint64_t>(100 + t), eopt);
        EXPECT_EQ(info->best, reference.best_value) << info->name;
    }
    EXPECT_EQ(sm.size(), static_cast<std::size_t>(kThreads));
}

TEST(ServeSession, ServerCrashResumesFromCheckpointAndMatches)
{
    // Acceptance scenario: kill the server mid-run, restart, resume from
    // checkpoint and finish — the final history must equal the
    // uninterrupted run's bit-for-bit.
    std::string dir = testing::TempDir();
    const int kBudget = 14;
    const std::uint64_t kSeed = 77;
    const int kBatch = 2;

    const Benchmark& bench = suite::find_benchmark(kBench);
    EvalEngineOptions eopt;
    eopt.batch_size = kBatch;
    TuningHistory reference = suite::run_method_batched(
        bench, suite::Method::kBaco, kBudget, kSeed, eopt);
    ASSERT_EQ(reference.size(), static_cast<std::size_t>(kBudget));

    std::string name = "crashy";
    {
        SessionManagerOptions opt;
        opt.checkpoint_dir = dir;
        SessionManager sm(opt);
        ASSERT_EQ(sm.handle(open_request(name, "BaCO", kBudget, kSeed)).type,
                  MsgType::kOpened);
        drive_session(sm, name, kBatch, /*max_evals=*/6);
        // The manager is destroyed here with the session still mid-budget
        // — the "crash". Durability comes from the per-observe checkpoint.
    }

    SessionManagerOptions opt;
    opt.checkpoint_dir = dir;
    SessionManager sm(opt);
    Message reopened = sm.handle(
        open_request(name, "BaCO", kBudget, kSeed, /*resume=*/true));
    ASSERT_EQ(reopened.type, MsgType::kOpened) << reopened.text;
    EXPECT_TRUE(reopened.resumed);
    EXPECT_EQ(reopened.evals, 6u);

    EXPECT_EQ(drive_session(sm, name, kBatch),
              static_cast<std::uint64_t>(kBudget));
    std::optional<SessionInfo> info = sm.info(name);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->best, reference.best_value);

    // The final on-disk checkpoint carries the full history: compare it
    // against the uninterrupted reference observation by observation.
    std::optional<CheckpointData> final_state =
        load_checkpoint(sm.checkpoint_path(name));
    ASSERT_TRUE(final_state.has_value());
    EXPECT_TRUE(histories_equal(final_state->history, reference));
    std::remove(sm.checkpoint_path(name).c_str());
}

TEST(ServeSession, ResumeWithWrongSeedIsRejected)
{
    std::string dir = testing::TempDir();
    SessionManagerOptions opt;
    opt.checkpoint_dir = dir;
    std::string name = "seeded";
    {
        SessionManager sm(opt);
        ASSERT_EQ(sm.handle(open_request(name, "Uniform", 8, 5)).type,
                  MsgType::kOpened);
        drive_session(sm, name, 2, 4);
    }
    SessionManager sm(opt);
    Message wrong = sm.handle(open_request(name, "Uniform", 8, 6, true));
    EXPECT_EQ(wrong.type, MsgType::kError);
    Message right = sm.handle(open_request(name, "Uniform", 8, 5, true));
    ASSERT_EQ(right.type, MsgType::kOpened) << right.text;
    EXPECT_TRUE(right.resumed);
    std::remove(sm.checkpoint_path(name).c_str());
}

TEST(ServeSession, IdleSessionsAreEvicted)
{
    SessionManagerOptions opt;
    opt.idle_timeout_seconds = 1e-9;  // everything is instantly idle
    SessionManager sm(opt);
    ASSERT_EQ(sm.handle(open_request("a", "Uniform", 8, 1)).type,
              MsgType::kOpened);
    ASSERT_EQ(sm.handle(open_request("b", "Uniform", 8, 2)).type,
              MsgType::kOpened);
    EXPECT_EQ(sm.size(), 2u);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(sm.evict_idle(), 2u);
    EXPECT_EQ(sm.size(), 0u);

    // A never-idle manager keeps its sessions.
    SessionManager keep;
    ASSERT_EQ(keep.handle(open_request("a", "Uniform", 8, 1)).type,
              MsgType::kOpened);
    EXPECT_EQ(keep.evict_idle(), 0u);
    EXPECT_EQ(keep.size(), 1u);
}

TEST(ServeSession, CheckpointRequestRefusesMidBatch)
{
    SessionManagerOptions opt;
    opt.checkpoint_dir = testing::TempDir();
    SessionManager sm(opt);
    ASSERT_EQ(sm.handle(open_request("mid", "Uniform", 8, 9)).type,
              MsgType::kOpened);

    Message ckpt;
    ckpt.type = MsgType::kCheckpoint;
    ckpt.session = "mid";
    EXPECT_EQ(sm.handle(ckpt).type, MsgType::kOk);

    Message ask;
    ask.type = MsgType::kSuggest;
    ask.session = "mid";
    ask.n = 2;
    ASSERT_EQ(sm.handle(ask).type, MsgType::kConfigs);
    // With a batch in flight the sampler stream is ahead of the history;
    // checkpointing now could not resume deterministically.
    EXPECT_EQ(sm.handle(ckpt).type, MsgType::kError);
    std::remove(sm.checkpoint_path("mid").c_str());
}

TEST(ServeSession, SharedCacheIsNamespacedPerSession)
{
    // Two sessions over different benchmarks share one cache: entries do
    // not collide, and a same-benchmark rerun hits.
    EvalCache cache;
    SessionManagerOptions opt;
    opt.cache = &cache;
    SessionManager sm(opt);
    ASSERT_EQ(sm.handle(open_request("c1", "Uniform", 6, 3)).type,
              MsgType::kOpened);
    drive_session(sm, "c1", 2);
    std::size_t after_first = cache.size();
    EXPECT_EQ(after_first, 6u);

    // Same seed + benchmark under a new session name: the observe path
    // re-inserts into the same namespace — no growth.
    ASSERT_EQ(sm.handle(open_request("c2", "Uniform", 6, 3)).type,
              MsgType::kOpened);
    drive_session(sm, "c2", 2);
    EXPECT_EQ(cache.size(), after_first);
}

TEST(ServeConnection, HandshakeAndMalformedFrames)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    // Version mismatch: rejected at the handshake.
    {
        auto [client, server] = loopback_pair();
        std::thread srv([&, s = std::shared_ptr<Transport>(
                                std::move(server))] {
            ServeStats stats = serve_connection(*s, ctx);
            EXPECT_FALSE(stats.handshake_ok);
        });
        Message hello;
        hello.type = MsgType::kHello;
        hello.version = kProtocolVersion + 1;
        ASSERT_TRUE(client->send(encode(hello)));
        std::string line;
        ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);
        Message reply;
        ASSERT_TRUE(decode(line, reply));
        EXPECT_EQ(reply.type, MsgType::kError);
        EXPECT_NE(reply.text.find("version"), std::string::npos);
        srv.join();
    }

    // Good handshake; then malformed frames get error replies and the
    // connection keeps serving real requests.
    {
        auto [client, server] = loopback_pair();
        std::thread srv([&, s = std::shared_ptr<Transport>(
                                std::move(server))] {
            ServeStats stats = serve_connection(*s, ctx);
            EXPECT_TRUE(stats.handshake_ok);
            EXPECT_GE(stats.errors, 2u);
        });
        Message hello;
        hello.type = MsgType::kHello;
        ASSERT_TRUE(client->send(encode(hello)));
        std::string line;
        ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);
        Message reply;
        ASSERT_TRUE(decode(line, reply));
        ASSERT_EQ(reply.type, MsgType::kWelcome);

        ASSERT_TRUE(client->send("garbage frame"));
        ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);
        ASSERT_TRUE(decode(line, reply));
        EXPECT_EQ(reply.type, MsgType::kError);

        ASSERT_TRUE(client->send("{\"type\":\"martian\"}"));
        ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);
        ASSERT_TRUE(decode(line, reply));
        EXPECT_EQ(reply.type, MsgType::kError);

        ASSERT_TRUE(client->send(encode(open_request("ok", "Uniform",
                                                     6, 1))));
        ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);
        ASSERT_TRUE(decode(line, reply));
        EXPECT_EQ(reply.type, MsgType::kOpened);

        Message bye;
        bye.type = MsgType::kShutdown;
        ASSERT_TRUE(client->send(encode(bye)));
        srv.join();
    }
}

TEST(ServeConnection, ServerSideRunCompletesSession)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    auto [client, server] = loopback_pair();
    std::thread srv(
        [&, s = std::shared_ptr<Transport>(std::move(server))] {
            serve_connection(*s, ctx);
        });

    Message hello;
    hello.type = MsgType::kHello;
    ASSERT_TRUE(client->send(encode(hello)));
    std::string line;
    ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);

    ASSERT_TRUE(client->send(encode(open_request("run-me", "Uniform",
                                                 10, 21))));
    ASSERT_EQ(client->recv(line, 5000), RecvStatus::kOk);
    Message reply;
    ASSERT_TRUE(decode(line, reply));
    ASSERT_EQ(reply.type, MsgType::kOpened) << reply.text;

    Message run;
    run.type = MsgType::kRun;
    run.id = 2;
    run.session = "run-me";
    run.n = 4;
    ASSERT_TRUE(client->send(encode(run)));
    ASSERT_EQ(client->recv(line, 30000), RecvStatus::kOk);
    ASSERT_TRUE(decode(line, reply));
    ASSERT_EQ(reply.type, MsgType::kDone) << reply.text;
    EXPECT_EQ(reply.evals, 10u);

    // In-process evaluation in handle_run matches the EvalEngine run.
    const Benchmark& bench = suite::find_benchmark(kBench);
    EvalEngineOptions eopt;
    eopt.batch_size = 4;
    TuningHistory reference = suite::run_method_batched(
        bench, suite::Method::kUniform, 10, 21, eopt);
    EXPECT_EQ(reply.best, reference.best_value);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(client->send(encode(bye)));
    srv.join();
}

TEST(ServeConnection, AsyncRunStreamsResultFramesBeforeDone)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    auto [client, server] = loopback_pair();
    std::thread srv(
        [&, s = std::shared_ptr<Transport>(std::move(server))] {
            serve_connection(*s, ctx);
        });

    Message hello;
    hello.type = MsgType::kHello;
    ASSERT_TRUE(client->send(encode(hello)));
    std::string line;
    ASSERT_EQ(client->recv(line, 2000), RecvStatus::kOk);

    const int budget = 10;
    ASSERT_TRUE(client->send(encode(open_request("stream-me", "Uniform",
                                                 budget, 29))));
    ASSERT_EQ(client->recv(line, 5000), RecvStatus::kOk);
    Message reply;
    ASSERT_TRUE(decode(line, reply));
    ASSERT_EQ(reply.type, MsgType::kOpened) << reply.text;

    Message run;
    run.type = MsgType::kRun;
    run.id = 7;
    run.session = "stream-me";
    run.n = 3;
    run.async = true;
    ASSERT_TRUE(client->send(encode(run)));

    // One streamed result frame per evaluation, then the final done.
    int results = 0;
    std::uint64_t max_evals_seen = 0;
    std::set<std::uint64_t> indices;
    for (;;) {
        ASSERT_EQ(client->recv(line, 30000), RecvStatus::kOk);
        ASSERT_TRUE(decode(line, reply)) << line;
        if (reply.type == MsgType::kDone)
            break;
        ASSERT_EQ(reply.type, MsgType::kResult) << reply.text;
        EXPECT_EQ(reply.id, 7u);
        indices.insert(reply.index);
        max_evals_seen = std::max(max_evals_seen, reply.evals);
        ++results;
    }
    EXPECT_EQ(results, budget);
    EXPECT_EQ(indices.size(), static_cast<std::size_t>(budget));
    EXPECT_EQ(max_evals_seen, static_cast<std::uint64_t>(budget));
    EXPECT_EQ(reply.evals, static_cast<std::uint64_t>(budget));

    // Session is intact and exhausted: a follow-up suggest returns an
    // empty batch, not an error.
    Message ask;
    ask.type = MsgType::kSuggest;
    ask.id = 8;
    ask.session = "stream-me";
    ask.n = 2;
    ASSERT_TRUE(client->send(encode(ask)));
    ASSERT_EQ(client->recv(line, 5000), RecvStatus::kOk);
    ASSERT_TRUE(decode(line, reply));
    EXPECT_EQ(reply.type, MsgType::kConfigs) << reply.text;
    EXPECT_TRUE(reply.configs.empty());

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(client->send(encode(bye)));
    srv.join();
}

const StatEntry*
find_stat(const Message& report, const std::string& name)
{
    for (const StatEntry& e : report.stats)
        if (e.name == name)
            return &e;
    return nullptr;
}

TEST(ServeSession, SessionStatsReportsLatencyHistograms)
{
    SessionManager sm;
    Message opened = sm.handle(open_request("obs-me", "Uniform", 20, 5));
    ASSERT_EQ(opened.type, MsgType::kOpened) << opened.text;

    const int kBatches = 4;
    drive_session(sm, "obs-me", /*batch=*/3, /*max_evals=*/3 * kBatches);

    Message req;
    req.type = MsgType::kStats;
    req.id = 9;
    req.session = "obs-me";
    Message report = sm.handle(req);
    ASSERT_EQ(report.type, MsgType::kStatsReport) << report.text;
    EXPECT_EQ(report.stats_version, kStatsVersion);

    const StatEntry* evals = find_stat(report, "session.evals");
    ASSERT_NE(evals, nullptr);
    EXPECT_DOUBLE_EQ(evals->value, 12.0);

    // drive_session issues one suggest + one observe per batch; the
    // per-session histograms must have counted each with a nonzero
    // latency and ordered percentiles.
    for (const char* name :
         {"session.suggest_seconds", "session.observe_seconds"}) {
        const StatEntry* h = find_stat(report, name);
        ASSERT_NE(h, nullptr) << name;
        EXPECT_EQ(h->kind, "histogram") << name;
        EXPECT_EQ(h->count, static_cast<std::uint64_t>(kBatches)) << name;
        EXPECT_GT(h->sum, 0.0) << name;
        EXPECT_GT(h->p50, 0.0) << name;
        EXPECT_LE(h->p50, h->p99) << name;
    }

    // Unknown session: an error frame, exactly like other handlers.
    req.session = "never-opened";
    Message err = sm.handle(req);
    EXPECT_EQ(err.type, MsgType::kError);
}

TEST(ServeConnection, ServerStatsFrameMatchesClientRequestCounts)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    auto [client_t, server] = loopback_pair();
    std::thread srv(
        [&, s = std::shared_ptr<Transport>(std::move(server))] {
            serve_connection(*s, ctx);
        });
    SessionClient client(*client_t);
    ASSERT_TRUE(client.handshake());

    // Baseline: serve.requests_total is a process-global counter (other
    // tests in this binary feed it too), so the pin is the DELTA
    // between two stats frames issued by this client.
    Message before = client.stats();
    ASSERT_EQ(before.type, MsgType::kStatsReport) << before.text;
    const StatEntry* req0 = find_stat(before, "serve.requests_total");
    ASSERT_NE(req0, nullptr);

    Message opened = client.open("count-me", kBench, "Uniform",
                                 /*budget=*/12, /*seed=*/3);
    ASSERT_EQ(opened.type, MsgType::kOpened) << opened.text;
    const int kSuggests = 3;
    std::uint64_t client_requests = 1;  // the open
    for (int i = 0; i < kSuggests; ++i) {
        Message configs = client.suggest("count-me", 2);
        ASSERT_EQ(configs.type, MsgType::kConfigs) << configs.text;
        ++client_requests;
        std::vector<ObservedResult> results;
        for (std::size_t k = 0; k < configs.configs.size(); ++k) {
            ObservedResult r;
            r.config = configs.configs[k];
            r.value = 1.0 + static_cast<double>(k);
            r.feasible = true;
            results.push_back(r);
        }
        Message ok = client.observe("count-me", std::move(results));
        ASSERT_EQ(ok.type, MsgType::kOk) << ok.text;
        ++client_requests;
    }

    Message after = client.stats();
    ASSERT_EQ(after.type, MsgType::kStatsReport) << after.text;
    const StatEntry* req1 = find_stat(after, "serve.requests_total");
    ASSERT_NE(req1, nullptr);

    // Every frame this client sent since the baseline — the opens,
    // suggests, observes, and the second stats request itself — must be
    // in the server's live counter: totals equal client-side counts.
    EXPECT_DOUBLE_EQ(req1->value - req0->value,
                     static_cast<double>(client_requests + 1));

    // The server-wide report also carries the session registry gauges
    // and the aggregate serve-layer latency histograms.
    const StatEntry* live = find_stat(after, "sessions.live");
    ASSERT_NE(live, nullptr);
    EXPECT_GE(live->value, 1.0);
    const StatEntry* suggest_h = find_stat(after, "serve.suggest_seconds");
    ASSERT_NE(suggest_h, nullptr);
    EXPECT_GE(suggest_h->count, static_cast<std::uint64_t>(kSuggests));

    // Named-session stats over the wire: the per-session histograms
    // report exactly this client's suggest/observe traffic.
    Message session_report = client.stats("count-me");
    ASSERT_EQ(session_report.type, MsgType::kStatsReport)
        << session_report.text;
    const StatEntry* sh = find_stat(session_report,
                                    "session.suggest_seconds");
    ASSERT_NE(sh, nullptr);
    EXPECT_EQ(sh->count, static_cast<std::uint64_t>(kSuggests));
    EXPECT_GT(sh->p50, 0.0);
    EXPECT_LE(sh->p50, sh->p99);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(client_t->send(encode(bye)));
    srv.join();
}

}  // namespace
}  // namespace baco::serve
