// The baco::Study front-door API: seed-for-seed parity between
// Study::run() and every legacy driver (serial Tuner::run, batched
// EvalEngine, single-slot async, distributed Coordinator), the
// MethodRegistry round-trip, the inline parameter DSL, the ask/tell
// embedding surface, and the uniform cache/checkpoint/on_event options.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "api/baco.hpp"
#include "baselines/random_search.hpp"
#include "suite/runner.hpp"

namespace baco {
namespace {

const char* kBench = "SDDMM/email-Enron";
constexpr int kBudget = 12;
constexpr std::uint64_t kSeed = 23;

/** A Study over the shared parity benchmark at the shared seed. */
StudyBuilder
parity_study(ExecutionPolicy policy, const std::string& method = "baco")
{
    StudyBuilder sb;
    sb.benchmark(kBench)
        .method(method)
        .budget(kBudget)
        .seed(kSeed)
        .execution(policy);
    return sb;
}

/** The legacy tuner the Study must reproduce, built outside the api. */
std::unique_ptr<AskTellTuner>
legacy_tuner(const SearchSpace& space, int doe)
{
    TunerOptions opt = TunerOptions::baco_defaults();
    opt.budget = kBudget;
    opt.doe_samples = doe;
    opt.seed = kSeed;
    return std::make_unique<Tuner>(space, opt);
}

// ---------------------------------------------------------------------------
// Seed-for-seed parity against all four legacy drivers.
// ---------------------------------------------------------------------------

TEST(StudyParity, SerialMatchesTunerRunBitForBit)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    TuningHistory reference =
        drive_serial(*legacy_tuner(*space, b.doe_samples), b.evaluate);

    StudyResult r = parity_study(ExecutionPolicy::Serial()).build().run();
    EXPECT_TRUE(histories_equal(reference, r.history));
    EXPECT_EQ(r.mode, ExecutionPolicy::Mode::kSerial);
    EXPECT_EQ(r.method, "baco");
    EXPECT_EQ(r.benchmark, kBench);
    EXPECT_EQ(r.seed, kSeed);
}

TEST(StudyParity, BatchedMatchesEvalEngineBitForBit)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    auto tuner = legacy_tuner(*space, b.doe_samples);
    EvalEngineOptions eopt;
    eopt.batch_size = 4;
    EvalEngine engine(eopt);
    TuningHistory reference = engine.run(*tuner, b.evaluate);

    StudyResult r =
        parity_study(ExecutionPolicy::Batched(4)).build().run();
    EXPECT_TRUE(histories_equal(reference, r.history));
}

TEST(StudyParity, AsyncSingleSlotMatchesSerialBitForBit)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    TuningHistory serial =
        drive_serial(*legacy_tuner(*space, b.doe_samples), b.evaluate);

    StudyResult r =
        parity_study(ExecutionPolicy::Async(/*slots=*/1, /*threads=*/2))
            .build()
            .run();
    EXPECT_TRUE(histories_equal(serial, r.history));
}

TEST(StudyParity, AsyncMultiSlotExhaustsBudget)
{
    StudyResult r =
        parity_study(ExecutionPolicy::Async(/*slots=*/3)).build().run();
    EXPECT_EQ(r.history.size(), static_cast<std::size_t>(kBudget));
    EXPECT_TRUE(r.history.best_config.has_value());
}

TEST(StudyParity, DistributedMatchesCoordinatorSelftestParity)
{
    // The serve layer's parity contract: a 2-worker sharded fleet
    // reproduces the same-seed batched EvalEngine run bit-for-bit.
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    auto tuner = legacy_tuner(*space, b.doe_samples);
    EvalEngineOptions eopt;
    eopt.batch_size = 4;
    EvalEngine engine(eopt);
    TuningHistory reference = engine.run(*tuner, b.evaluate);

    StudyResult r =
        parity_study(ExecutionPolicy::Distributed(/*workers=*/2,
                                                  /*batch_size=*/4))
            .build()
            .run();
    EXPECT_TRUE(histories_equal(reference, r.history));
    EXPECT_EQ(r.mode, ExecutionPolicy::Mode::kDistributed);
}

TEST(StudyParity, DeprecatedSuiteWrappersStillMatchLegacySemantics)
{
    // run_method_batched is now a one-line Study wrapper; it must still
    // equal the serial driver at batch 1.
    const Benchmark& b = suite::find_benchmark(kBench);
    TuningHistory serial =
        suite::run_method(b, suite::Method::kBaco, kBudget, kSeed);
    EvalEngineOptions eopt;
    eopt.batch_size = 1;
    TuningHistory batched = suite::run_method_batched(
        b, suite::Method::kBaco, kBudget, kSeed, eopt);
    EXPECT_TRUE(histories_equal(serial, batched));
}

// ---------------------------------------------------------------------------
// MethodRegistry.
// ---------------------------------------------------------------------------

TEST(MethodRegistry, RoundTripEveryRegisteredMethod)
{
    SearchSpace space;
    space.add_ordinal("x", {1, 2, 4, 8}, true);
    space.add_categorical("m", {"a", "b"});

    MethodRegistry& registry = MethodRegistry::global();
    MethodSpec spec;
    spec.budget = 6;
    spec.doe_samples = 3;
    spec.seed = 5;
    for (const std::string& name : registry.names()) {
        SCOPED_TRACE(name);
        ASSERT_TRUE(registry.contains(name));
        EXPECT_EQ(*registry.resolve(name), name);
        std::unique_ptr<AskTellTuner> tuner =
            registry.make(name, space, spec);
        ASSERT_NE(tuner, nullptr);
        // The tuner honors the spec: budget-bounded suggestions under
        // the requested seed.
        EXPECT_EQ(tuner->remaining(), 6);
        EXPECT_EQ(tuner->run_seed(), 5u);
        EXPECT_FALSE(tuner->suggest(1).empty());
    }
}

TEST(MethodRegistry, SuiteDisplayNamesResolveAsAliases)
{
    MethodRegistry& registry = MethodRegistry::global();
    EXPECT_EQ(*registry.resolve("BaCO"), "baco");
    EXPECT_EQ(*registry.resolve("BaCO--"), "baco--");
    EXPECT_EQ(*registry.resolve("ATF"), "opentuner");
    EXPECT_EQ(*registry.resolve("Uniform"), "random");
    EXPECT_EQ(*registry.resolve("Ytopt"), "ytopt");
    EXPECT_EQ(*registry.resolve("Ytopt(GP)"), "ytopt-gp");
    EXPECT_EQ(*registry.resolve("CoT"), "cot");
    // Every suite enum constructs through the registry.
    for (suite::Method m : suite::headline_methods())
        EXPECT_TRUE(registry.contains(suite::method_name(m)));
}

TEST(MethodRegistry, UnknownNameThrowsWithSuggestions)
{
    SearchSpace space;
    space.add_ordinal("x", {1, 2}, false);
    try {
        MethodRegistry::global().make("bacoo", space, MethodSpec{});
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown method 'bacoo'"), std::string::npos);
        EXPECT_NE(msg.find("did you mean"), std::string::npos);
        EXPECT_NE(msg.find("'baco'"), std::string::npos);
    }
}

TEST(MethodRegistry, UserRegisteredMethodReachesStudy)
{
    MethodRegistry& registry = MethodRegistry::global();
    registry.add("test-random-2x",
                 [](const SearchSpace& space, const MethodSpec& spec) {
                     RandomSearchOptions opt;
                     opt.budget = spec.budget;
                     opt.seed = spec.seed;
                     return std::make_unique<RandomSearchTuner>(
                         space, opt, /*biased_walk=*/false);
                 });
    ASSERT_TRUE(registry.contains("test-random-2x"));

    StudyResult r = parity_study(ExecutionPolicy::Serial(),
                                 "Test-Random-2X")  // case-insensitive
                        .build()
                        .run();
    EXPECT_EQ(r.method, "test-random-2x");
    EXPECT_EQ(r.history.size(), static_cast<std::size_t>(kBudget));
}

TEST(MethodRegistry, ConflictingAliasIsRejected)
{
    MethodRegistry& registry = MethodRegistry::global();
    auto null_factory = [](const SearchSpace&, const MethodSpec&)
        -> std::unique_ptr<AskTellTuner> { return nullptr; };
    EXPECT_THROW(registry.add("baco", null_factory,
                              {"random"}),  // names a different method
                 std::invalid_argument);
    // A rejected registration must not leave the new name
    // half-registered (resolvable but factory-less).
    EXPECT_THROW(
        registry.add("half-registered", null_factory, {"Uniform"}),
        std::invalid_argument);
    EXPECT_FALSE(registry.contains("half-registered"));
}

// ---------------------------------------------------------------------------
// Inline DSL, ask/tell embedding, events, validation.
// ---------------------------------------------------------------------------

EvalResult
dsl_eval(const Configuration& c, RngEngine& rng)
{
    double tile = static_cast<double>(as_int(c[0]));
    double penalty = as_int(c[1]) == 0 ? 1.5 : 0.0;
    return EvalResult{std::pow(std::log2(tile / 8.0), 2) + penalty +
                          0.01 * rng.uniform(0, 1),
                      true};
}

StudyBuilder
dsl_study()
{
    StudyBuilder sb;
    sb.ordinal("tile", {2, 4, 8, 16, 32}, true)
        .categorical("mode", {"a", "b"})
        .constraint("tile >= 4")
        .objective(dsl_eval)
        .budget(10)
        .doe(4)
        .seed(3);
    return sb;
}

TEST(Study, InlineDslRunsAndRespectsConstraints)
{
    StudyResult r = dsl_study().build().run();
    EXPECT_EQ(r.history.size(), 10u);
    ASSERT_TRUE(r.history.best_config.has_value());
    for (const Observation& o : r.history.observations)
        EXPECT_GE(as_int(o.config[0]), 4);  // known constraint honored
    EXPECT_TRUE(r.benchmark.empty());
}

TEST(Study, SecondFinalizationThrowsInsteadOfRedriving)
{
    Study study = dsl_study().build();
    StudyResult r = study.run();
    EXPECT_EQ(r.history.size(), 10u);
    EXPECT_THROW(study.result(), std::logic_error);
    EXPECT_THROW(study.run(), std::logic_error);
    EXPECT_THROW(study.ask(1), std::logic_error);
    EXPECT_THROW(study.tell(Configuration{}, EvalResult{}),
                 std::logic_error);
}

TEST(Study, BuildConsumesTheInlineSpace)
{
    // DSL calls after build() must not mutate the live study's space —
    // its tuner fixed the dimensionality at construction.
    StudyBuilder sb = dsl_study();
    Study study = sb.build();
    EXPECT_EQ(study.space().num_params(), 2u);
    sb.categorical("late", {"x", "y"});
    EXPECT_EQ(study.space().num_params(), 2u);
}

TEST(Study, AskTellEmbeddingMatchesRun)
{
    TuningHistory driven = dsl_study().build().run().history;

    Study study = dsl_study().build();
    while (study.remaining() > 0) {
        std::vector<Configuration> batch = study.ask(1);
        if (batch.empty())
            break;
        // Reproduce the serial driver's evaluation contract: the noise
        // stream is keyed by (run seed, evaluation index).
        std::uint64_t index = study.tuner().history().size();
        RngEngine rng = eval_rng_for(study.tuner().run_seed(), index);
        study.tell(batch.front(), dsl_eval(batch.front(), rng));
    }
    StudyResult r = study.result();
    EXPECT_TRUE(histories_equal(driven, r.history));
}

TEST(Study, EventsFireInHistoryOrderAcrossPolicies)
{
    for (ExecutionPolicy policy :
         {ExecutionPolicy::Serial(), ExecutionPolicy::Batched(4)}) {
        SCOPED_TRACE(execution_mode_name(policy.mode));
        std::vector<std::uint64_t> indices;
        double last_best = std::numeric_limits<double>::infinity();
        StudyResult r = dsl_study()
                            .execution(policy)
                            .on_event([&](const AsyncEvent& ev) {
                                indices.push_back(ev.index);
                                last_best = ev.best;
                            })
                            .build()
                            .run();
        ASSERT_EQ(indices.size(), r.history.size());
        for (std::size_t i = 0; i < indices.size(); ++i)
            EXPECT_EQ(indices[i], i);  // history order
        EXPECT_DOUBLE_EQ(last_best, r.history.best_value);
    }
}

TEST(Study, BuildValidationRejectsInconsistentSpecs)
{
    // No space at all.
    EXPECT_THROW(StudyBuilder().objective(dsl_eval).budget(5).build(),
                 std::invalid_argument);
    // Two space sources.
    EXPECT_THROW(StudyBuilder()
                     .benchmark(kBench)
                     .ordinal("x", {1, 2})
                     .build(),
                 std::invalid_argument);
    // Inline study without a budget.
    EXPECT_THROW(
        StudyBuilder().ordinal("x", {1, 2}).objective(dsl_eval).build(),
        std::invalid_argument);
    // Distributed without a registry benchmark.
    EXPECT_THROW(StudyBuilder()
                     .ordinal("x", {1, 2})
                     .objective(dsl_eval)
                     .budget(5)
                     .execution(ExecutionPolicy::Distributed(2))
                     .build(),
                 std::invalid_argument);
    // Distributed with a benchmark object that is not the registry's
    // own instance (here: a modified copy): workers resolve by name
    // and would silently evaluate the registry version — fail at
    // build, not with wrong results mid-run.
    {
        Benchmark rogue = suite::find_benchmark(kBench);
        rogue.evaluate = [](const Configuration&, RngEngine&) {
            return EvalResult{0.0, true};
        };
        EXPECT_THROW(StudyBuilder()
                         .benchmark(rogue)
                         .execution(ExecutionPolicy::Distributed(2))
                         .build(),
                     std::invalid_argument);
    }
    // Distributed with a custom objective: workers evaluate the
    // registry benchmark's own black box, so a local override would be
    // silently ignored — reject it instead.
    EXPECT_THROW(StudyBuilder()
                     .benchmark(kBench)
                     .objective(dsl_eval)
                     .execution(ExecutionPolicy::Distributed(2))
                     .build(),
                 std::invalid_argument);
    // Unknown benchmark name suggests close matches.
    try {
        StudyBuilder().benchmark("SDDMM/email-Enrom");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("SDDMM/email-Enron"),
                  std::string::npos);
    }
    // Inline study without an objective fails at run().
    Study no_objective =
        StudyBuilder().ordinal("x", {1, 2}).budget(3).build();
    EXPECT_THROW(no_objective.run(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Uniform cache + checkpoint options.
// ---------------------------------------------------------------------------

TEST(Study, SharedCacheShortCircuitsRepeatRunsWithProvenance)
{
    EvalCache cache;
    auto cached_study = [&] {
        return parity_study(ExecutionPolicy::Batched(3))
            .cache(&cache)
            .build();
    };
    StudyResult first = cached_study().run();
    EXPECT_EQ(first.cache_hits, 0u);
    EXPECT_GT(first.cache_misses, 0u);
    EXPECT_FALSE(first.cache_namespace.empty());  // benchmark identity

    StudyResult second = cached_study().run();
    // Identical seed => identical suggestions => pure cache replay.
    EXPECT_TRUE(histories_equal(first.history, second.history));
    EXPECT_EQ(second.cache_hits,
              static_cast<std::uint64_t>(second.history.size()));
    EXPECT_EQ(second.cache_misses, 0u);
}

TEST(Study, OverriddenObjectiveNeverClaimsBenchmarkCacheNamespace)
{
    // Fill the cache under the benchmark's identity namespace.
    EvalCache cache;
    StudyResult real = parity_study(ExecutionPolicy::Serial())
                           .cache(&cache)
                           .build()
                           .run();
    ASSERT_FALSE(real.cache_namespace.empty());

    // A study overriding the benchmark's objective must not read those
    // entries: it lands in the anonymous namespace and misses.
    BlackBoxFn stub = [](const Configuration&, RngEngine&) {
        return EvalResult{1.0, true};
    };
    StudyResult stubbed = parity_study(ExecutionPolicy::Serial())
                              .objective(stub)
                              .cache(&cache)
                              .build()
                              .run();
    EXPECT_TRUE(stubbed.cache_namespace.empty());
    EXPECT_EQ(stubbed.cache_hits, 0u);
    for (const Observation& o : stubbed.history.observations)
        EXPECT_DOUBLE_EQ(o.value, 1.0);  // the stub's results, never the
                                         // benchmark's cached ones
}

TEST(Study, CacheLruBoundAppliedThroughBuilder)
{
    EvalCache cache;
    parity_study(ExecutionPolicy::Batched(3))
        .cache(&cache, /*max_entries=*/4)
        .build()
        .run();
    EXPECT_EQ(cache.max_entries(), 4u);
    EXPECT_LE(cache.size(), 4u);
    EXPECT_GT(cache.evictions(), 0u);  // budget 12 >> bound 4
}

TEST(Study, CheckpointResumeReproducesUninterruptedRun)
{
    std::string path = testing::TempDir() + "baco_api_study_resume.ckpt";
    std::remove(path.c_str());

    TuningHistory full =
        parity_study(ExecutionPolicy::Serial()).build().run().history;

    // Interrupted run: stop after 5 evaluations by telling through the
    // ask/tell surface with checkpointing on.
    {
        Study study = parity_study(ExecutionPolicy::Serial())
                          .checkpoint(path)
                          .build();
        const Benchmark& b = suite::find_benchmark(kBench);
        for (int i = 0; i < 5; ++i) {
            std::vector<Configuration> batch = study.ask(1);
            ASSERT_FALSE(batch.empty());
            std::uint64_t index = study.tuner().history().size();
            RngEngine rng = eval_rng_for(kSeed, index);
            study.tell(batch.front(), b.evaluate(batch.front(), rng));
        }
    }

    StudyResult resumed = parity_study(ExecutionPolicy::Serial())
                              .checkpoint(path, /*resume=*/true)
                              .build()
                              .run();
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.resumed_evals, 5u);
    EXPECT_TRUE(histories_equal(full, resumed.history));

    // A seed mismatch must be an error, not a silent fresh start.
    EXPECT_THROW(parity_study(ExecutionPolicy::Serial())
                     .seed(kSeed + 1)
                     .checkpoint(path, /*resume=*/true)
                     .build(),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(Study, AsyncCheckpointPendingResumesUnderEveryPolicy)
{
    // A killed async run leaves in-flight evaluations in its
    // checkpoint. Resuming must re-dispatch them under their original
    // indices no matter which ExecutionPolicy the resumed study picks:
    // the sync policies' drain must match the async driver's
    // (established, separately tested) resume behavior exactly.
    std::string path = testing::TempDir() + "baco_api_study_pending.ckpt";
    const Benchmark& b = suite::find_benchmark(kBench);

    auto make_pending_checkpoint = [&]() -> Configuration {
        std::remove(path.c_str());
        Study study = parity_study(ExecutionPolicy::Serial()).build();
        for (int i = 0; i < 4; ++i) {
            std::vector<Configuration> batch = study.ask(1);
            std::uint64_t index = study.tuner().history().size();
            RngEngine rng = eval_rng_for(kSeed, index);
            study.tell(batch.front(), b.evaluate(batch.front(), rng));
        }
        // One more suggestion dies in flight: index 4. (A single
        // pending eval keeps the async reference deterministic — the
        // async driver re-dispatches multiple pending concurrently, so
        // their arrival order would not be comparable.)
        std::vector<Configuration> next = study.ask(1);
        std::vector<PendingEval> pending{PendingEval{4, next.front()}};
        EXPECT_TRUE(save_checkpoint(path, study.tuner(), pending));
        return next.front();
    };

    auto resume_with = [&](ExecutionPolicy policy) {
        return parity_study(policy)
            .checkpoint(path, /*resume=*/true)
            .build()
            .run()
            .history;
    };

    Configuration in_flight = make_pending_checkpoint();
    // The result the killed run would have told: index 4's own stream.
    RngEngine rng4 = eval_rng_for(kSeed, 4);
    EvalResult expected = b.evaluate(in_flight, rng4);

    TuningHistory via_async = resume_with(ExecutionPolicy::Async(1));
    make_pending_checkpoint();
    TuningHistory via_serial = resume_with(ExecutionPolicy::Serial());
    make_pending_checkpoint();
    TuningHistory via_batched = resume_with(ExecutionPolicy::Batched(3));

    // The ask/tell embedding path handles the same checkpoint through
    // resume_pending()/tell_pending(): ask() refuses until the
    // in-flight work is drained, and the drained exchange reproduces
    // the run()-driven serial resume exactly.
    make_pending_checkpoint();
    TuningHistory via_asktell;
    {
        Study study = parity_study(ExecutionPolicy::Serial())
                          .checkpoint(path, /*resume=*/true)
                          .build();
        ASSERT_EQ(study.resume_pending().size(), 1u);
        EXPECT_THROW(study.ask(1), std::logic_error);
        EXPECT_THROW(study.tell(Configuration{}, EvalResult{}),
                     std::logic_error);
        PendingEval p = study.resume_pending().front();
        RngEngine prng = eval_rng_for(kSeed, p.index);
        study.tell_pending(p, b.evaluate(p.config, prng));
        while (study.remaining() > 0) {
            std::vector<Configuration> next = study.ask(1);
            if (next.empty())
                break;
            std::uint64_t index = study.tuner().history().size();
            RngEngine rng = eval_rng_for(kSeed, index);
            study.tell(next.front(), b.evaluate(next.front(), rng));
        }
        via_asktell = study.result().history;
    }

    // Single-slot async is the established resume semantic; the serial
    // and ask/tell drains must match it observation-for-observation.
    // Batched continues with its own (legitimately different) batch
    // suggestions after the drain, but the drained evaluation itself
    // must land at its original index with its original noise stream.
    EXPECT_EQ(via_async.size(), static_cast<std::size_t>(kBudget));
    EXPECT_TRUE(histories_equal(via_async, via_serial));
    EXPECT_TRUE(histories_equal(via_async, via_asktell));
    for (const TuningHistory* h : {&via_async, &via_serial, &via_batched}) {
        ASSERT_EQ(h->size(), static_cast<std::size_t>(kBudget));
        EXPECT_TRUE(configs_equal(h->observations[4].config, in_flight));
        EXPECT_DOUBLE_EQ(h->observations[4].value, expected.value);
        EXPECT_EQ(h->observations[4].feasible, expected.feasible);
    }
    std::remove(path.c_str());
}

}  // namespace
}  // namespace baco
