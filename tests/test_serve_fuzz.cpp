// Fuzz/stress layer for the JSONL wire protocol: a seeded generator
// feeds the decoder truncated, duplicated, spliced and byte-mutated
// frames — strict rejection, no crashes — and replays malformed traffic
// against a live serve loop and worker loop to pin the malformed-frame
// paths: garbage must be answered with error frames and never corrupt
// session or worker state.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "linalg/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

/** One representative frame of every message type, arrays included. */
std::vector<std::string>
frame_corpus()
{
    std::vector<std::string> corpus;
    Configuration config;
    config.push_back(std::int64_t{4});
    config.push_back(0.5);
    config.push_back(Permutation{2, 0, 1});

    Message m;
    m.type = MsgType::kHello;
    m.text = "worker";
    m.capacity = 2;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kWelcome;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kOpenSession;
    m.id = 1;
    m.session = "fuzz";
    m.benchmark = kBench;
    m.method = "BaCO";
    m.budget = 16;
    m.seed = 7;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kSuggest;
    m.id = 2;
    m.session = "fuzz";
    m.n = 4;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kConfigs;
    m.id = 2;
    m.index = 3;
    m.configs = {config, config};
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kObserve;
    m.id = 3;
    m.session = "fuzz";
    m.eval_seconds = 0.25;
    {
        ObservedResult r;
        r.config = config;
        r.value = 1.5;
        r.feasible = true;
        m.results.push_back(r);
        r.value = std::numeric_limits<double>::infinity();
        r.feasible = false;
        m.results.push_back(r);
    }
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kRun;
    m.id = 4;
    m.session = "fuzz";
    m.n = 4;
    m.budget = 8;
    m.async = true;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kEvaluate;
    m.id = 5;
    m.benchmark = kBench;
    m.seed = 9;
    m.index = 12;
    m.config = config;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kResult;
    m.id = 5;
    m.index = 12;
    m.value = 2.5;
    m.feasible = true;
    m.eval_seconds = 0.1;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kOk;
    m.id = 3;
    m.evals = 10;
    m.best = 1.25;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kDone;
    m.id = 4;
    m.evals = 16;
    m.best = 1.0;
    corpus.push_back(encode(m));

    m = make_error(9, "something broke");
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kShutdown;
    corpus.push_back(encode(m));
    return corpus;
}

TEST(ProtocolFuzz, EveryProperPrefixIsStrictlyRejected)
{
    for (const std::string& frame : frame_corpus()) {
        Message out;
        ASSERT_TRUE(decode(frame, out)) << frame;
        for (std::size_t len = 0; len < frame.size(); ++len) {
            EXPECT_FALSE(decode(frame.substr(0, len), out))
                << "accepted truncation of " << frame << " at " << len;
        }
    }
}

TEST(ProtocolFuzz, SeededMutationsNeverCrashTheDecoder)
{
    std::vector<std::string> corpus = frame_corpus();
    RngEngine rng(20260730);
    int accepted = 0;
    for (int iter = 0; iter < 20000; ++iter) {
        std::string s = corpus[rng.index(corpus.size())];
        switch (rng.index(5)) {
          case 0:  // truncate
            s = s.substr(0, rng.index(s.size() + 1));
            break;
          case 1: {  // duplicate a chunk in place
            std::size_t a = rng.index(s.size());
            std::size_t n = rng.index(s.size() - a) + 1;
            s.insert(a, s.substr(a, n));
            break;
          }
          case 2: {  // splice: prefix of one frame + suffix of another
            const std::string& other = corpus[rng.index(corpus.size())];
            s = s.substr(0, rng.index(s.size() + 1)) +
                other.substr(rng.index(other.size() + 1));
            break;
          }
          case 3: {  // flip a byte
            if (!s.empty())
                s[rng.index(s.size())] =
                    static_cast<char>(rng.uniform_int(1, 255));
            break;
          }
          case 4: {  // interleave two frames character-wise
            const std::string& other = corpus[rng.index(corpus.size())];
            std::string mixed;
            std::size_t i = 0, j = 0;
            while (i < s.size() || j < other.size()) {
                if (i < s.size() && (j >= other.size() || rng.bernoulli(0.5)))
                    mixed += s[i++];
                else
                    mixed += other[j++];
            }
            s = std::move(mixed);
            break;
          }
        }
        Message out;
        std::string err;
        if (decode(s, out, &err))
            ++accepted;  // a mutation may still be well-formed; fine
    }
    // The decoder is strict: most mutations must be rejected. (A solid
    // minority survives legitimately — byte flips and duplications that
    // land inside string values, splices of same-typed frames and
    // untruncated originals are all well-formed frames.)
    EXPECT_LT(accepted, 20000 / 2);
}

TEST(ProtocolFuzz, ServeLoopSurvivesMalformedTrafficWithoutCorruption)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    auto [client, server] = loopback_pair();
    std::thread srv([&, s = std::shared_ptr<Transport>(std::move(server))] {
        ServeStats stats = serve_connection(*s, ctx);
        EXPECT_TRUE(stats.handshake_ok);
        EXPECT_GE(stats.errors, 4u);
    });

    auto exchange = [&](const std::string& frame) {
        std::string line;
        EXPECT_TRUE(client->send(frame));
        EXPECT_EQ(client->recv(line, 5000), RecvStatus::kOk);
        Message reply;
        EXPECT_TRUE(decode(line, reply)) << line;
        return reply;
    };

    Message hello;
    hello.type = MsgType::kHello;
    ASSERT_TRUE(client->send(encode(hello)));
    std::string line;
    ASSERT_EQ(client->recv(line, 5000), RecvStatus::kOk);

    Message open;
    open.type = MsgType::kOpenSession;
    open.id = 1;
    open.session = "fz";
    open.benchmark = kBench;
    open.method = "Uniform";
    open.budget = 8;
    open.seed = 3;
    ASSERT_EQ(exchange(encode(open)).type, MsgType::kOpened);

    // A seeded burst of garbage between every valid step: each one must
    // be answered with an error frame, and the session must keep working
    // as if nothing happened.
    std::vector<std::string> corpus = frame_corpus();
    RngEngine rng(99);
    auto garbage = [&] {
        std::string s = corpus[rng.index(corpus.size())];
        return s.substr(0, 1 + rng.index(s.size() - 1));  // proper prefix
    };
    for (int round = 0; round < 8; ++round)
        EXPECT_EQ(exchange(garbage()).type, MsgType::kError);

    Message ask;
    ask.type = MsgType::kSuggest;
    ask.id = 2;
    ask.session = "fz";
    ask.n = 2;
    Message configs = exchange(encode(ask));
    ASSERT_EQ(configs.type, MsgType::kConfigs) << configs.text;
    ASSERT_EQ(configs.configs.size(), 2u);

    EXPECT_EQ(exchange(garbage()).type, MsgType::kError);

    // A duplicated (replayed) suggest returns the same outstanding batch
    // rather than corrupting the exchange.
    Message replay = exchange(encode(ask));
    ASSERT_EQ(replay.type, MsgType::kConfigs);
    ASSERT_EQ(replay.configs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_TRUE(configs_equal(replay.configs[i], configs.configs[i]));

    const Benchmark& bench = suite::find_benchmark(kBench);
    Message tell;
    tell.type = MsgType::kObserve;
    tell.id = 3;
    tell.session = "fz";
    for (std::size_t i = 0; i < configs.configs.size(); ++i) {
        ObservedResult r;
        r.config = configs.configs[i];
        EvalResult res =
            evaluate_on(bench, r.config, open.seed, configs.index + i);
        r.value = res.value;
        r.feasible = res.feasible;
        tell.results.push_back(std::move(r));
    }
    Message ok = exchange(encode(tell));
    ASSERT_EQ(ok.type, MsgType::kOk) << ok.text;
    EXPECT_EQ(ok.evals, 2u);

    // A duplicated observe (replay of a consumed batch) is rejected
    // without damaging the session...
    EXPECT_EQ(exchange(encode(tell)).type, MsgType::kError);
    // ...which still serves valid requests afterwards.
    ask.n = 1;
    EXPECT_EQ(exchange(encode(ask)).type, MsgType::kConfigs);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(client->send(encode(bye)));
    srv.join();
}

TEST(ProtocolFuzz, WorkerLoopRejectsGarbageAndKeepsEvaluating)
{
    auto [coordinator_end, worker_end] = loopback_pair();
    std::thread worker(
        [t = std::shared_ptr<Transport>(std::move(worker_end))] {
            run_worker_loop(*t);
        });

    std::string line;
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    Message hello;
    ASSERT_TRUE(decode(line, hello));
    ASSERT_EQ(hello.type, MsgType::kHello);

    Message eval;
    eval.type = MsgType::kEvaluate;
    eval.id = 1;
    eval.benchmark = kBench;
    eval.seed = 5;
    eval.index = 0;
    {
        const Benchmark& bench = suite::find_benchmark(kBench);
        auto space = bench.make_space(SpaceVariant{});
        RngEngine rng(1);
        auto sample = space->sample_feasible(rng, 1000);
        eval.config =
            sample ? *sample : space->sample_unconstrained(rng);
    }
    std::string valid = encode(eval);

    // Garbage (a truncation) draws an error frame, not a dead worker.
    ASSERT_TRUE(coordinator_end->send(valid.substr(0, valid.size() / 2)));
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    Message reply;
    ASSERT_TRUE(decode(line, reply));
    EXPECT_EQ(reply.type, MsgType::kError);

    // The worker still evaluates, and its result frame carries the
    // evaluation index for streaming observers.
    ASSERT_TRUE(coordinator_end->send(valid));
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    ASSERT_TRUE(decode(line, reply));
    ASSERT_EQ(reply.type, MsgType::kResult) << reply.text;
    EXPECT_EQ(reply.id, 1u);
    EXPECT_EQ(reply.index, 0u);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(coordinator_end->send(encode(bye)));
    worker.join();
}

}  // namespace
}  // namespace baco::serve
