// Fuzz/stress layer for the JSONL wire protocol: a seeded generator
// feeds the decoder truncated, duplicated, spliced and byte-mutated
// frames — strict rejection, no crashes — and replays malformed traffic
// against a live serve loop and worker loop to pin the malformed-frame
// paths: garbage must be answered with error frames and never corrupt
// session or worker state.
//
// The SocketFraming suite runs the same decoder pins over a real
// SocketTransport loopback pair (an AF_UNIX socketpair) and pins the
// transport edge cases pipes and sockets share: partial frames split
// across arbitrary recv boundaries, peer close mid-frame, and EINTR
// landing inside blocked read() and write() calls.

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "linalg/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

// Peer-close tests write into sockets whose reader is gone.
const int kSigpipeIgnored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
}();

/** One representative frame of every message type, arrays included. */
std::vector<std::string>
frame_corpus()
{
    std::vector<std::string> corpus;
    Configuration config;
    config.push_back(std::int64_t{4});
    config.push_back(0.5);
    config.push_back(Permutation{2, 0, 1});

    Message m;
    m.type = MsgType::kHello;
    m.text = "worker";
    m.capacity = 2;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kWelcome;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kOpenSession;
    m.id = 1;
    m.session = "fuzz";
    m.benchmark = kBench;
    m.method = "BaCO";
    m.budget = 16;
    m.seed = 7;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kSuggest;
    m.id = 2;
    m.session = "fuzz";
    m.n = 4;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kConfigs;
    m.id = 2;
    m.index = 3;
    m.configs = {config, config};
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kObserve;
    m.id = 3;
    m.session = "fuzz";
    m.eval_seconds = 0.25;
    {
        ObservedResult r;
        r.config = config;
        r.value = 1.5;
        r.feasible = true;
        m.results.push_back(r);
        r.value = std::numeric_limits<double>::infinity();
        r.feasible = false;
        m.results.push_back(r);
    }
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kRun;
    m.id = 4;
    m.session = "fuzz";
    m.n = 4;
    m.budget = 8;
    m.async = true;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kEvaluate;
    m.id = 5;
    m.benchmark = kBench;
    m.seed = 9;
    m.index = 12;
    m.config = config;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kResult;
    m.id = 5;
    m.index = 12;
    m.value = 2.5;
    m.feasible = true;
    m.eval_seconds = 0.1;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kOk;
    m.id = 3;
    m.evals = 10;
    m.best = 1.25;
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kDone;
    m.id = 4;
    m.evals = 16;
    m.best = 1.0;
    corpus.push_back(encode(m));

    m = make_error(9, "something broke");
    corpus.push_back(encode(m));

    m = Message{};
    m.type = MsgType::kShutdown;
    corpus.push_back(encode(m));
    return corpus;
}

TEST(ProtocolFuzz, EveryProperPrefixIsStrictlyRejected)
{
    for (const std::string& frame : frame_corpus()) {
        Message out;
        ASSERT_TRUE(decode(frame, out)) << frame;
        for (std::size_t len = 0; len < frame.size(); ++len) {
            EXPECT_FALSE(decode(frame.substr(0, len), out))
                << "accepted truncation of " << frame << " at " << len;
        }
    }
}

TEST(ProtocolFuzz, SeededMutationsNeverCrashTheDecoder)
{
    std::vector<std::string> corpus = frame_corpus();
    RngEngine rng(20260730);
    int accepted = 0;
    for (int iter = 0; iter < 20000; ++iter) {
        std::string s = corpus[rng.index(corpus.size())];
        switch (rng.index(5)) {
          case 0:  // truncate
            s = s.substr(0, rng.index(s.size() + 1));
            break;
          case 1: {  // duplicate a chunk in place
            std::size_t a = rng.index(s.size());
            std::size_t n = rng.index(s.size() - a) + 1;
            s.insert(a, s.substr(a, n));
            break;
          }
          case 2: {  // splice: prefix of one frame + suffix of another
            const std::string& other = corpus[rng.index(corpus.size())];
            s = s.substr(0, rng.index(s.size() + 1)) +
                other.substr(rng.index(other.size() + 1));
            break;
          }
          case 3: {  // flip a byte
            if (!s.empty())
                s[rng.index(s.size())] =
                    static_cast<char>(rng.uniform_int(1, 255));
            break;
          }
          case 4: {  // interleave two frames character-wise
            const std::string& other = corpus[rng.index(corpus.size())];
            std::string mixed;
            std::size_t i = 0, j = 0;
            while (i < s.size() || j < other.size()) {
                if (i < s.size() && (j >= other.size() || rng.bernoulli(0.5)))
                    mixed += s[i++];
                else
                    mixed += other[j++];
            }
            s = std::move(mixed);
            break;
          }
        }
        Message out;
        std::string err;
        if (decode(s, out, &err))
            ++accepted;  // a mutation may still be well-formed; fine
    }
    // The decoder is strict: most mutations must be rejected. (A solid
    // minority survives legitimately — byte flips and duplications that
    // land inside string values, splices of same-typed frames and
    // untruncated originals are all well-formed frames.)
    EXPECT_LT(accepted, 20000 / 2);
}

TEST(ProtocolFuzz, ServeLoopSurvivesMalformedTrafficWithoutCorruption)
{
    SessionManager sm;
    ServerContext ctx;
    ctx.sessions = &sm;

    auto [client, server] = loopback_pair();
    std::thread srv([&, s = std::shared_ptr<Transport>(std::move(server))] {
        ServeStats stats = serve_connection(*s, ctx);
        EXPECT_TRUE(stats.handshake_ok);
        EXPECT_GE(stats.errors, 4u);
    });

    auto exchange = [&](const std::string& frame) {
        std::string line;
        EXPECT_TRUE(client->send(frame));
        EXPECT_EQ(client->recv(line, 5000), RecvStatus::kOk);
        Message reply;
        EXPECT_TRUE(decode(line, reply)) << line;
        return reply;
    };

    Message hello;
    hello.type = MsgType::kHello;
    ASSERT_TRUE(client->send(encode(hello)));
    std::string line;
    ASSERT_EQ(client->recv(line, 5000), RecvStatus::kOk);

    Message open;
    open.type = MsgType::kOpenSession;
    open.id = 1;
    open.session = "fz";
    open.benchmark = kBench;
    open.method = "Uniform";
    open.budget = 8;
    open.seed = 3;
    ASSERT_EQ(exchange(encode(open)).type, MsgType::kOpened);

    // A seeded burst of garbage between every valid step: each one must
    // be answered with an error frame, and the session must keep working
    // as if nothing happened.
    std::vector<std::string> corpus = frame_corpus();
    RngEngine rng(99);
    auto garbage = [&] {
        std::string s = corpus[rng.index(corpus.size())];
        return s.substr(0, 1 + rng.index(s.size() - 1));  // proper prefix
    };
    for (int round = 0; round < 8; ++round)
        EXPECT_EQ(exchange(garbage()).type, MsgType::kError);

    Message ask;
    ask.type = MsgType::kSuggest;
    ask.id = 2;
    ask.session = "fz";
    ask.n = 2;
    Message configs = exchange(encode(ask));
    ASSERT_EQ(configs.type, MsgType::kConfigs) << configs.text;
    ASSERT_EQ(configs.configs.size(), 2u);

    EXPECT_EQ(exchange(garbage()).type, MsgType::kError);

    // A duplicated (replayed) suggest returns the same outstanding batch
    // rather than corrupting the exchange.
    Message replay = exchange(encode(ask));
    ASSERT_EQ(replay.type, MsgType::kConfigs);
    ASSERT_EQ(replay.configs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_TRUE(configs_equal(replay.configs[i], configs.configs[i]));

    const Benchmark& bench = suite::find_benchmark(kBench);
    Message tell;
    tell.type = MsgType::kObserve;
    tell.id = 3;
    tell.session = "fz";
    for (std::size_t i = 0; i < configs.configs.size(); ++i) {
        ObservedResult r;
        r.config = configs.configs[i];
        EvalResult res =
            evaluate_on(bench, r.config, open.seed, configs.index + i);
        r.value = res.value;
        r.feasible = res.feasible;
        tell.results.push_back(std::move(r));
    }
    Message ok = exchange(encode(tell));
    ASSERT_EQ(ok.type, MsgType::kOk) << ok.text;
    EXPECT_EQ(ok.evals, 2u);

    // A duplicated observe (replay of a consumed batch) is rejected
    // without damaging the session...
    EXPECT_EQ(exchange(encode(tell)).type, MsgType::kError);
    // ...which still serves valid requests afterwards.
    ask.n = 1;
    EXPECT_EQ(exchange(encode(ask)).type, MsgType::kConfigs);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(client->send(encode(bye)));
    srv.join();
}

TEST(ProtocolFuzz, WorkerLoopRejectsGarbageAndKeepsEvaluating)
{
    auto [coordinator_end, worker_end] = loopback_pair();
    std::thread worker(
        [t = std::shared_ptr<Transport>(std::move(worker_end))] {
            run_worker_loop(*t);
        });

    std::string line;
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    Message hello;
    ASSERT_TRUE(decode(line, hello));
    ASSERT_EQ(hello.type, MsgType::kHello);

    Message eval;
    eval.type = MsgType::kEvaluate;
    eval.id = 1;
    eval.benchmark = kBench;
    eval.seed = 5;
    eval.index = 0;
    {
        const Benchmark& bench = suite::find_benchmark(kBench);
        auto space = bench.make_space(SpaceVariant{});
        RngEngine rng(1);
        auto sample = space->sample_feasible(rng, 1000);
        eval.config =
            sample ? *sample : space->sample_unconstrained(rng);
    }
    std::string valid = encode(eval);

    // Garbage (a truncation) draws an error frame, not a dead worker.
    ASSERT_TRUE(coordinator_end->send(valid.substr(0, valid.size() / 2)));
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    Message reply;
    ASSERT_TRUE(decode(line, reply));
    EXPECT_EQ(reply.type, MsgType::kError);

    // The worker still evaluates, and its result frame carries the
    // evaluation index for streaming observers.
    ASSERT_TRUE(coordinator_end->send(valid));
    ASSERT_EQ(coordinator_end->recv(line, 5000), RecvStatus::kOk);
    ASSERT_TRUE(decode(line, reply));
    ASSERT_EQ(reply.type, MsgType::kResult) << reply.text;
    EXPECT_EQ(reply.id, 1u);
    EXPECT_EQ(reply.index, 0u);

    Message bye;
    bye.type = MsgType::kShutdown;
    ASSERT_TRUE(coordinator_end->send(encode(bye)));
    worker.join();
}

// ---------------------------------------------------------------------------
// SocketFraming: transport edge cases shared by pipes and sockets,
// exercised over a real SocketTransport loopback pair.
// ---------------------------------------------------------------------------

/** A connected AF_UNIX pair: transport on one end, raw fd on the other
 *  (raw, so tests can write partial frames and byte-sized chunks). */
struct RawSocketPair {
  std::unique_ptr<SocketTransport> transport;
  int raw_fd = -1;

  RawSocketPair()
  {
      int sv[2] = {-1, -1};
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      transport = std::make_unique<SocketTransport>(sv[0]);
      raw_fd = sv[1];
  }

  ~RawSocketPair()
  {
      if (raw_fd >= 0)
          ::close(raw_fd);
  }
};

TEST(SocketFraming, DecoderPinsHoldOverASocketLoopbackPair)
{
    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    SocketTransport a(sv[0]);
    SocketTransport b(sv[1]);
    // Every corpus frame round-trips the socket byte-identically and
    // re-decodes to a frame that re-encodes to the same bytes.
    for (const std::string& frame : frame_corpus()) {
        ASSERT_TRUE(a.send(frame));
        std::string line;
        ASSERT_EQ(b.recv(line, 5000), RecvStatus::kOk);
        EXPECT_EQ(line, frame);
        Message m;
        ASSERT_TRUE(decode(line, m)) << line;
        EXPECT_EQ(encode(m), frame);
    }
}

TEST(SocketFraming, PartialFramesAcrossRecvBoundaries)
{
    RawSocketPair pair;
    std::vector<std::string> corpus = frame_corpus();
    const std::string& frame = corpus[2];  // open_session, nested arrays

    // Byte-dribbled frame: every recv boundary lands mid-frame, and the
    // reader must time out (frame incomplete) rather than deliver one.
    std::string wire = frame + "\n";
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        ASSERT_EQ(::send(pair.raw_fd, wire.data() + i, 1, 0), 1);
        if (i == wire.size() / 2) {
            std::string line;
            EXPECT_EQ(pair.transport->recv(line, 10),
                      RecvStatus::kTimeout);
        }
    }
    ASSERT_EQ(::send(pair.raw_fd, wire.data() + wire.size() - 1, 1, 0), 1);
    std::string line;
    ASSERT_EQ(pair.transport->recv(line, 5000), RecvStatus::kOk);
    EXPECT_EQ(line, frame);

    // Many frames in one write: each comes out whole, in order.
    std::string burst;
    for (const std::string& f : corpus)
        burst += f + "\n";
    ASSERT_EQ(::send(pair.raw_fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    for (const std::string& f : corpus) {
        ASSERT_EQ(pair.transport->recv(line, 5000), RecvStatus::kOk);
        EXPECT_EQ(line, f);
    }
}

TEST(SocketFraming, PeerCloseMidFrameDiscardsThePartialLine)
{
    RawSocketPair pair;
    std::string frame = frame_corpus()[2];
    std::string half = frame.substr(0, frame.size() / 2);
    ASSERT_EQ(::send(pair.raw_fd, half.data(), half.size(), 0),
              static_cast<ssize_t>(half.size()));
    ::close(pair.raw_fd);
    pair.raw_fd = -1;
    // The half frame must never surface as a (shorter) decoded message:
    // the transport reports the close and discards the partial buffer.
    std::string line;
    EXPECT_EQ(pair.transport->recv(line, 5000), RecvStatus::kClosed);
    // And a closed transport stays closed.
    EXPECT_EQ(pair.transport->recv(line, 10), RecvStatus::kClosed);
    EXPECT_FALSE(pair.transport->send(frame));
}

/** Installed without SA_RESTART so signals actually interrupt
 *  syscalls — the strictest EINTR environment. */
void
install_noop_usr1()
{
    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;  // deliberately no SA_RESTART
    ::sigemptyset(&sa.sa_mask);
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);
}

TEST(SocketFraming, EintrDuringBlockedRecvIsRetried)
{
    install_noop_usr1();
    RawSocketPair pair;
    std::string frame = frame_corpus()[0];

    std::string line;
    RecvStatus status = RecvStatus::kTimeout;
    std::thread reader([&] {
        status = pair.transport->recv(line, 20000);  // blocks
    });
    // Pepper the blocked reader with signals; each EINTR must be
    // swallowed by the retry loop, not surfaced as a closed transport.
    for (int i = 0; i < 50; ++i) {
        ::pthread_kill(reader.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string wire = frame + "\n";
    ASSERT_EQ(::send(pair.raw_fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    reader.join();
    EXPECT_EQ(status, RecvStatus::kOk);
    EXPECT_EQ(line, frame);
}

TEST(SocketFraming, EintrDuringBlockedSendIsRetried)
{
    install_noop_usr1();
    RawSocketPair pair;
    // Shrink the send buffer so a large frame cannot be written in one
    // syscall: the writer must block (and then take signals) mid-frame.
    int small = 4096;
    ASSERT_EQ(::setsockopt(pair.raw_fd, SOL_SOCKET, SO_RCVBUF, &small,
                           sizeof small),
              0);

    Message big = make_error(7, std::string(1 << 20, 'x'));
    std::string frame = encode(big);

    bool sent = false;
    std::thread writer([&] { sent = pair.transport->send(frame); });
    for (int i = 0; i < 50; ++i) {
        ::pthread_kill(writer.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Drain the raw side until the whole frame (plus newline) arrived.
    std::string got;
    char chunk[65536];
    while (got.size() < frame.size() + 1) {
        ssize_t n = ::recv(pair.raw_fd, chunk, sizeof chunk, 0);
        ASSERT_GT(n, 0);
        got.append(chunk, static_cast<std::size_t>(n));
    }
    writer.join();
    EXPECT_TRUE(sent);
    EXPECT_EQ(got, frame + "\n");  // intact despite interrupted writes
}

TEST(SocketFraming, CloseFromAnotherThreadWakesABlockedReader)
{
    RawSocketPair pair;
    std::string line;
    RecvStatus status = RecvStatus::kOk;
    std::thread reader([&] {
        status = pair.transport->recv(line, 30000);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.transport->close();  // shutdown-based: must wake the poll
    reader.join();
    EXPECT_EQ(status, RecvStatus::kClosed);
}

}  // namespace
}  // namespace baco::serve
