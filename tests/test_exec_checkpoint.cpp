// JSONL checkpoint/resume: round-trip fidelity and mid-budget resume
// reproducing the uninterrupted history exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/opentuner_like.hpp"
#include "core/tuner.hpp"
#include "exec/checkpoint.hpp"
#include "exec/eval_engine.hpp"

namespace baco {
namespace {

/** Mixed-type space including a permutation, to stress serialization. */
SearchSpace
mixed_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_real("alpha", 0.1, 2.0);
    s.add_permutation("loops", 3);
    return s;
}

EvalResult
mixed_eval(const Configuration& c, RngEngine& rng)
{
    double tile = static_cast<double>(as_int(c[0]));
    double alpha = as_real(c[1]);
    const auto& perm = std::get<Permutation>(c[2]);
    double v = 1.0 + std::pow(std::log2(tile / 32.0), 2) +
               (alpha - 0.7) * (alpha - 0.7) +
               (perm[0] == 0 ? 0.0 : 0.8);
    if (tile >= 128 && alpha > 1.5)
        return EvalResult::infeasible();  // hidden constraint
    return EvalResult{v * rng.lognormal_factor(0.02), true};
}

TEST(Checkpoint, SaveLoadRoundtripPreservesHistory)
{
    SearchSpace s = mixed_space();
    TunerOptions opt;
    opt.budget = 12;
    opt.doe_samples = 5;
    opt.seed = 4;
    opt.log_objective = false;
    Tuner tuner(s, opt);
    EvalEngine engine;
    engine.drive(tuner, mixed_eval, 12);

    std::string path = testing::TempDir() + "baco_test_ckpt_roundtrip.jsonl";
    ASSERT_TRUE(save_checkpoint(path, tuner));

    std::optional<CheckpointData> data = load_checkpoint(path);
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(data->seed, opt.seed);
    EXPECT_TRUE(histories_equal(data->history, tuner.history()));
    EXPECT_EQ(data->history.best_value, tuner.history().best_value);
    EXPECT_EQ(data->sampler_state, tuner.sampler_state());
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeReproducesUninterruptedHistory)
{
    SearchSpace s = mixed_space();
    TunerOptions opt;
    opt.budget = 20;
    opt.doe_samples = 6;
    opt.seed = 13;
    opt.log_objective = false;

    EvalEngineOptions eopt;
    eopt.batch_size = 2;

    // Reference: one uninterrupted run.
    Tuner full(s, opt);
    TuningHistory reference = EvalEngine(eopt).run(full, mixed_eval);
    ASSERT_EQ(reference.size(), 20u);

    // Interrupted run: 8 evaluations (a batch boundary), then "crash".
    std::string path = testing::TempDir() + "baco_test_ckpt_resume.jsonl";
    EvalEngineOptions copt = eopt;
    copt.checkpoint_path = path;
    {
        Tuner interrupted(s, opt);
        EvalEngine(copt).drive(interrupted, mixed_eval, 8);
        ASSERT_EQ(interrupted.history().size(), 8u);
    }

    // Resume into a fresh tuner and finish the budget.
    Tuner resumed(s, opt);
    ASSERT_TRUE(resume_from_checkpoint(path, resumed));
    ASSERT_EQ(resumed.history().size(), 8u);
    TuningHistory final_history = EvalEngine(copt).run(resumed, mixed_eval);

    EXPECT_TRUE(histories_equal(reference, final_history));
    EXPECT_EQ(reference.best_value, final_history.best_value);
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWorksForBaselines)
{
    SearchSpace s = mixed_space();
    OpenTunerLike::Options opt;
    opt.budget = 14;
    opt.initial_random = 5;
    opt.seed = 23;

    std::string path = testing::TempDir() + "baco_test_ckpt_baseline.jsonl";
    {
        OpenTunerLike interrupted(s, opt);
        EvalEngineOptions copt;
        copt.checkpoint_path = path;
        EvalEngine(copt).drive(interrupted, mixed_eval, 6);
    }

    OpenTunerLike resumed(s, opt);
    ASSERT_TRUE(resume_from_checkpoint(path, resumed));
    EXPECT_EQ(resumed.history().size(), 6u);
    TuningHistory h = EvalEngine().run(resumed, mixed_eval);
    EXPECT_EQ(h.size(), 14u);
    std::remove(path.c_str());
}

TEST(Checkpoint, BanditWindowResumesBitForBit)
{
    // The AUC credit window and use counts are serialized in the sampler
    // state, so a resumed OpenTunerLike run makes identical technique
    // choices — the full history matches the uninterrupted run exactly.
    SearchSpace s = mixed_space();
    OpenTunerLike::Options opt;
    opt.budget = 30;
    opt.initial_random = 6;
    opt.seed = 91;

    OpenTunerLike full(s, opt);
    TuningHistory reference = EvalEngine().run(full, mixed_eval);
    ASSERT_EQ(reference.size(), 30u);

    // Interrupt well past the seed phase, when the bandit credit state
    // actively steers technique selection.
    std::string path = testing::TempDir() + "baco_test_ckpt_bandit.jsonl";
    {
        OpenTunerLike interrupted(s, opt);
        EvalEngineOptions copt;
        copt.checkpoint_path = path;
        EvalEngine(copt).drive(interrupted, mixed_eval, 18);
    }

    OpenTunerLike resumed(s, opt);
    ASSERT_TRUE(resume_from_checkpoint(path, resumed));
    ASSERT_EQ(resumed.history().size(), 18u);
    TuningHistory final_history = EvalEngine().run(resumed, mixed_eval);

    EXPECT_TRUE(histories_equal(reference, final_history));
    EXPECT_EQ(reference.best_value, final_history.best_value);
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeRejectsSeedMismatch)
{
    SearchSpace s = mixed_space();
    OpenTunerLike::Options opt;
    opt.budget = 10;
    opt.initial_random = 4;
    opt.seed = 5;

    std::string path = testing::TempDir() + "baco_test_ckpt_seed.jsonl";
    {
        OpenTunerLike run(s, opt);
        EvalEngineOptions copt;
        copt.checkpoint_path = path;
        EvalEngine(copt).drive(run, mixed_eval, 4);
    }

    // The per-evaluation RNG streams are rooted at the run seed, so a
    // checkpoint must not restore into a differently-seeded tuner.
    OpenTunerLike::Options other = opt;
    other.seed = 6;
    OpenTunerLike mismatched(s, other);
    EXPECT_FALSE(resume_from_checkpoint(path, mismatched));
    OpenTunerLike matched(s, opt);
    EXPECT_TRUE(resume_from_checkpoint(path, matched));
    std::remove(path.c_str());
}

TEST(Checkpoint, LoadMissingOrCorruptFileFails)
{
    EXPECT_FALSE(load_checkpoint("/nonexistent/ckpt.jsonl").has_value());

    std::string path = testing::TempDir() + "baco_test_ckpt_corrupt.jsonl";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not json\n", f);
        std::fclose(f);
    }
    EXPECT_FALSE(load_checkpoint(path).has_value());
    std::remove(path.c_str());
}

TEST(Checkpoint, PendingEvaluationsRoundTrip)
{
    SearchSpace s = mixed_space();
    TunerOptions opt;
    opt.budget = 12;
    opt.doe_samples = 4;
    opt.seed = 6;
    opt.log_objective = false;
    Tuner tuner(s, opt);
    EvalEngine engine;
    engine.drive(tuner, mixed_eval, 4);

    // Two in-flight evaluations (mixed types, permutation included).
    std::vector<PendingEval> pending;
    std::vector<Configuration> batch = tuner.suggest(2);
    ASSERT_EQ(batch.size(), 2u);
    pending.push_back(PendingEval{4, batch[0]});
    pending.push_back(PendingEval{5, batch[1]});

    std::string path = testing::TempDir() + "baco_test_ckpt_pending.jsonl";
    ASSERT_TRUE(save_checkpoint(path, tuner, pending));

    std::optional<CheckpointData> data = load_checkpoint(path);
    ASSERT_TRUE(data.has_value());
    EXPECT_TRUE(histories_equal(data->history, tuner.history()));
    ASSERT_EQ(data->pending.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(data->pending[i].index, pending[i].index);
        EXPECT_TRUE(
            configs_equal(data->pending[i].config, pending[i].config));
    }

    // A batch-mode resume (no pending out-param) still restores cleanly.
    Tuner resumed(s, opt);
    EXPECT_TRUE(resume_from_checkpoint(path, resumed));
    EXPECT_TRUE(histories_equal(resumed.history(), tuner.history()));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace baco
