// ThreadPool under contention: oversubscribed concurrent submits,
// exceptions thrown from jobs, destruction with queued work, and the
// single-lane inline degenerate case — previously only exercised
// indirectly through the EvalEngine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace baco {
namespace {

TEST(ThreadPoolContention, OversubscribedConcurrentSubmitsAllRun)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};

    // Many producers hammering submit() concurrently, far more tasks
    // than lanes: every task must run exactly once.
    std::vector<std::thread> producers;
    const int kProducers = 8;
    const int kPerProducer = 250;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            for (int i = 0; i < kPerProducer; ++i)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    for (std::thread& t : producers)
        t.join();
    pool.wait_idle();
    EXPECT_EQ(count.load(), kProducers * kPerProducer);

    // The pool stays usable for barrier batches afterwards.
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i)
        tasks.push_back([&count] { count.fetch_add(1); });
    pool.run(std::move(tasks));
    EXPECT_EQ(count.load(), kProducers * kPerProducer + 20);
}

TEST(ThreadPoolContention, RunRethrowsFirstJobExceptionAndStaysUsable)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
        tasks.push_back([&count, i] {
            if (i == 7)
                throw std::runtime_error("job failed");
            count.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
    // The batch drained (31 healthy jobs all ran despite the throw).
    EXPECT_EQ(count.load(), 31);

    // No sticky error: the next batch completes cleanly.
    std::vector<std::function<void()>> next;
    for (int i = 0; i < 16; ++i)
        next.push_back([&count] { count.fetch_add(1); });
    pool.run(std::move(next));
    EXPECT_EQ(count.load(), 31 + 16);
}

TEST(ThreadPoolContention, WaitIdleRethrowsSubmittedJobException)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&count, i] {
            if (i == 3)
                throw std::runtime_error("submitted job failed");
            count.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    EXPECT_EQ(count.load(), 7);
    // The error was consumed; a clean wait follows.
    pool.wait_idle();
}

TEST(ThreadPoolContention, DestructionDrainsQueuedSubmits)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        // Slow tasks pile up in the queues; the destructor must drain
        // them (every submitted task runs), not drop them.
        for (int i = 0; i < 48; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(300));
                count.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(count.load(), 48);
}

TEST(ThreadPoolContention, SingleLanePoolRunsSubmitsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    int count = 0;  // no atomic needed: inline means caller-thread
    pool.submit([&count] { ++count; });
    EXPECT_EQ(count, 1);  // already ran when submit() returned
    pool.wait_idle();
    EXPECT_EQ(count, 1);
}

TEST(ThreadPoolContention, QueueDepthAndBusyWorkersObserveLoad)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.queue_depth(), 0);
    EXPECT_EQ(pool.busy_workers(), 0);

    // Park every worker lane on a latch, then pile up queued work:
    // queue_depth() must see the backlog and busy_workers() the parked
    // lanes. (The caller lane is not parked — submit() never runs
    // inline on a multi-lane pool.)
    std::atomic<bool> release{false};
    std::atomic<int> parked{0};
    const int kWorkers = 2;  // pool size 3 = 2 workers + caller lane
    for (int i = 0; i < kWorkers; ++i) {
        pool.submit([&] {
            parked.fetch_add(1);
            while (!release.load())
                std::this_thread::sleep_for(std::chrono::microseconds(50));
        });
    }
    while (parked.load() < kWorkers)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    EXPECT_EQ(pool.busy_workers(), kWorkers);

    const int kQueued = 10;
    std::atomic<int> ran{0};
    for (int i = 0; i < kQueued; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    // Both blockers are mid-task, so everything else is still queued.
    EXPECT_EQ(pool.queue_depth(), kQueued);

    release.store(true);
    pool.wait_idle();
    EXPECT_EQ(ran.load(), kQueued);
    EXPECT_EQ(pool.queue_depth(), 0);
    EXPECT_EQ(pool.busy_workers(), 0);
}

TEST(ThreadPoolContention, BusyWorkersCountsCallerInsideRun)
{
    ThreadPool pool(2);
    std::atomic<int> peak{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([&] {
            int busy = pool.busy_workers();
            int prev = peak.load();
            while (busy > prev &&
                   !peak.compare_exchange_weak(prev, busy)) {
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
    }
    pool.run(std::move(tasks));
    // run() has the caller participate, so with enough tasks both lanes
    // are inside execute() at once at some point.
    EXPECT_GE(peak.load(), 2);
    EXPECT_LE(peak.load(), pool.size());
    EXPECT_EQ(pool.busy_workers(), 0);
}

TEST(ThreadPoolContention, SubmitsAndRunBatchesInterleave)
{
    ThreadPool pool(4);
    std::atomic<int> background{0};
    std::atomic<int> batch{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&background] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            background.fetch_add(1);
        });
    }
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i)
        tasks.push_back([&batch] { batch.fetch_add(1); });
    // run() barriers on everything outstanding, submits included.
    pool.run(std::move(tasks));
    EXPECT_EQ(batch.load(), 32);
    EXPECT_EQ(background.load(), 64);
}

}  // namespace
}  // namespace baco
