// The fully asynchronous (tell-as-results-land) evaluation mode:
// adversarial per-config delay schedules, slot-utilization and
// every-config-told invariants, single-slot bit-for-bit determinism,
// kill/resume with in-flight evaluations, cache interaction and
// objective-exception draining.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "baselines/random_search.hpp"
#include "core/tuner.hpp"
#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "exec/eval_engine.hpp"
#include "obs/metrics.hpp"
#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco {
namespace {

using Clock = std::chrono::steady_clock;

SearchSpace
synthetic_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_categorical("mode", {"a", "b"});
    s.add_ordinal("unroll", {1, 2, 4, 8}, true);
    s.add_constraint("unroll <= tile");
    return s;
}

EvalResult
synthetic_eval(const Configuration& c, RngEngine& rng)
{
    double tile = static_cast<double>(as_int(c[0]));
    bool mode_b = as_int(c[1]) == 1;
    double unroll = static_cast<double>(as_int(c[2]));
    double v = 1.0 + std::pow(std::log2(tile / 32.0), 2) +
               (mode_b ? 0.0 : 1.5) +
               0.5 * std::pow(std::log2(unroll / 4.0), 2);
    return EvalResult{v * rng.lognormal_factor(0.05), true};
}

/** Multiset of configuration hashes in a history. */
std::map<std::size_t, int>
config_multiset(const TuningHistory& h)
{
    std::map<std::size_t, int> m;
    for (const Observation& o : h.observations)
        m[config_hash(o.config)] += 1;
    return m;
}

TEST(AsyncEngine, SingleSlotMatchesSerialBitForBit)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 24;
    opt.doe_samples = 8;
    opt.seed = 42;

    TuningHistory serial = Tuner(s, opt).run(synthetic_eval);

    Tuner tuner(s, opt);
    EvalEngineOptions eopt;
    eopt.num_threads = 3;
    eopt.batch_size = 1;  // one slot: async degenerates to the serial loop
    eopt.async_mode = true;
    TuningHistory async = EvalEngine(eopt).run(tuner, synthetic_eval);

    ASSERT_EQ(serial.size(), async.size());
    EXPECT_TRUE(histories_equal(serial, async));
    EXPECT_EQ(serial.best_value, async.best_value);
}

TEST(AsyncEngine, MultiSlotHistoryIsPermutationOfSerialForSampling)
{
    // A sampling tuner draws the identical configuration sequence no
    // matter how asks are sliced, and indices are dealt in suggestion
    // order — so the async history must be a permutation of the serial
    // one, with the identical best.
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 30;
    opt.seed = 9;

    RandomSearchTuner serial_tuner(s, opt, /*biased_walk=*/false);
    TuningHistory serial = drive_serial(serial_tuner, synthetic_eval);

    RandomSearchTuner async_tuner(s, opt, /*biased_walk=*/false);
    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    TuningHistory async = EvalEngine(eopt).run(async_tuner, synthetic_eval);

    ASSERT_EQ(serial.size(), async.size());
    EXPECT_EQ(config_multiset(serial), config_multiset(async));
    EXPECT_EQ(serial.best_value, async.best_value);
}

/**
 * Records every configuration handed out and every configuration told
 * back, to pin the "every suggested config is eventually observed"
 * invariant through arbitrary completion orders.
 */
class AuditingTuner : public AskTellTuner {
 public:
  explicit AuditingTuner(AskTellTuner& inner) : inner_(inner) {}

  std::vector<Configuration>
  suggest(int n) override
  {
      return record(inner_.suggest(n));
  }
  std::vector<Configuration>
  suggest_with_pending(int n,
                       const std::vector<Configuration>& pending) override
  {
      return record(inner_.suggest_with_pending(n, pending));
  }
  void
  observe(const std::vector<Configuration>& configs,
          const std::vector<EvalResult>& results) override
  {
      for (const Configuration& c : configs)
          observed_[config_hash(c)] += 1;
      inner_.observe(configs, results);
  }
  int remaining() const override { return inner_.remaining(); }
  std::uint64_t run_seed() const override { return inner_.run_seed(); }
  const TuningHistory& history() const override { return inner_.history(); }
  TuningHistory& mutable_history() override
  {
      return inner_.mutable_history();
  }
  TuningHistory take_history() override { return inner_.take_history(); }

  const std::map<std::size_t, int>& suggested() const { return suggested_; }
  const std::map<std::size_t, int>& observed() const { return observed_; }

 private:
  std::vector<Configuration>
  record(std::vector<Configuration> out)
  {
      for (const Configuration& c : out)
          suggested_[config_hash(c)] += 1;
      return out;
  }

  AskTellTuner& inner_;
  std::map<std::size_t, int> suggested_;
  std::map<std::size_t, int> observed_;
};

TEST(AsyncEngine, EverySuggestedConfigIsEventuallyToldUnderRandomJitter)
{
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 40;
    opt.seed = 5;
    RandomSearchTuner inner(s, opt, /*biased_walk=*/false);
    AuditingTuner tuner(inner);

    // Random per-evaluation jitter (drawn from the evaluation's own
    // noise stream, so the schedule is adversarially uneven but the
    // results stay deterministic).
    auto jittered = [](const Configuration& c, RngEngine& rng) {
        EvalResult r = synthetic_eval(c, rng);
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int>(rng.uniform(50.0, 4000.0))));
        return r;
    };

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    TuningHistory h = EvalEngine(eopt).run(tuner, jittered);

    EXPECT_EQ(h.size(), 40u);
    EXPECT_EQ(tuner.suggested(), tuner.observed());
}

TEST(AsyncEngine, SlowestFirstScheduleDoesNotStarveSlots)
{
    // Adversarial schedule: the very first evaluation to start is 100x
    // slower than the rest. A batched engine would barrier its whole
    // round on it; the async engine must keep the other slots churning
    // through (nearly) the entire budget while it runs.
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 24;
    opt.seed = 3;
    RandomSearchTuner tuner(s, opt, /*biased_walk=*/false);

    std::atomic<int> started{0};
    std::atomic<int> concurrent{0};
    std::atomic<int> high_water{0};
    std::atomic<bool> slow_done{false};
    auto adversarial = [&](const Configuration& c, RngEngine& rng) {
        bool slow = started.fetch_add(1) == 0;
        int now = concurrent.fetch_add(1) + 1;
        int seen = high_water.load();
        while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(slow ? 250 : 2));
        if (slow)
            slow_done.store(true);
        concurrent.fetch_sub(1);
        return synthetic_eval(c, rng);
    };

    std::atomic<int> told_while_slow_running{0};
    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    EvalEngine engine(eopt);
    auto t0 = Clock::now();
    TuningHistory h = engine.run_async(
        tuner, adversarial, [&](const AsyncEvent&) {
            if (!slow_done.load())
                told_while_slow_running.fetch_add(1);
        });
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    EXPECT_EQ(h.size(), 24u);
    // All four slots were busy simultaneously at some point...
    EXPECT_EQ(high_water.load(), 4);
    // ...and the short evaluations were told while the straggler ran
    // instead of barriering behind it (23 shorts exist; allow scheduler
    // slack).
    EXPECT_GE(told_while_slow_running.load(), 18);
    // Wall-clock is dominated by the one straggler, not by 24 rounds.
    EXPECT_LT(wall, 1.5);
}

TEST(AsyncEngine, KillResumeWithInFlightEvaluationsDoesNotDoubleTell)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 20;
    opt.doe_samples = 6;
    opt.seed = 11;

    std::string ckpt = testing::TempDir() + "baco_async_ckpt.jsonl";
    std::string snapshot = testing::TempDir() + "baco_async_kill.jsonl";
    std::remove(ckpt.c_str());
    std::remove(snapshot.c_str());

    auto jittered = [](const Configuration& c, RngEngine& rng) {
        EvalResult r = synthetic_eval(c, rng);
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int>(rng.uniform(100.0, 2000.0))));
        return r;
    };

    // First leg: run to completion, but photograph the checkpoint right
    // after the 8th tell — a moment with (slots - 1) evaluations still
    // in flight — exactly what a kill at that instant would leave behind.
    {
        Tuner tuner(s, opt);
        EvalEngineOptions eopt;
        eopt.num_threads = 4;
        eopt.batch_size = 4;
        eopt.async_mode = true;
        eopt.checkpoint_path = ckpt;
        EvalEngine engine(eopt);
        int told = 0;
        engine.run_async(tuner, jittered, [&](const AsyncEvent&) {
            if (++told == 8) {
                std::ifstream in(ckpt, std::ios::binary);
                std::ofstream out(snapshot, std::ios::binary);
                out << in.rdbuf();
            }
        });
    }

    std::optional<CheckpointData> snap = load_checkpoint(snapshot);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->history.size(), 8u);
    ASSERT_EQ(snap->pending.size(), 3u);  // slots - 1 in flight at a tell

    // Second leg: restore the killed run and let it finish.
    Tuner resumed(s, opt);
    std::vector<PendingEval> pending;
    ASSERT_TRUE(resume_from_checkpoint(snapshot, resumed, &pending));
    ASSERT_EQ(pending.size(), 3u);
    std::vector<std::size_t> pending_hashes;
    for (const PendingEval& p : pending)
        pending_hashes.push_back(config_hash(p.config));

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    TuningHistory h =
        EvalEngine(eopt).run_async(resumed, jittered, {}, std::move(pending));

    // No double-telling: exactly the budget was observed, every config
    // exactly once (the tuner dedups), and each formerly in-flight
    // config was told exactly once.
    ASSERT_EQ(h.size(), 20u);
    std::map<std::size_t, int> counts = config_multiset(h);
    EXPECT_EQ(counts.size(), 20u);
    for (std::size_t ph : pending_hashes)
        EXPECT_EQ(counts[ph], 1) << "in-flight config lost or re-told";
    EXPECT_TRUE(h.best_config.has_value());

    std::remove(ckpt.c_str());
    std::remove(snapshot.c_str());
}

TEST(AsyncEngine, SingleSlotKillResumeReproducesUninterruptedRun)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 16;
    opt.doe_samples = 6;
    opt.seed = 23;

    TuningHistory uninterrupted = Tuner(s, opt).run(synthetic_eval);

    std::string ckpt = testing::TempDir() + "baco_async_ckpt1.jsonl";
    std::remove(ckpt.c_str());
    EvalEngineOptions eopt;
    eopt.batch_size = 1;
    eopt.async_mode = true;
    eopt.checkpoint_path = ckpt;
    {
        Tuner tuner(s, opt);
        EvalEngine(eopt).drive_async(tuner, synthetic_eval, /*max_evals=*/7);
    }
    Tuner resumed(s, opt);
    std::vector<PendingEval> pending;
    ASSERT_TRUE(resume_from_checkpoint(ckpt, resumed, &pending));
    EXPECT_TRUE(pending.empty());  // single slot: nothing was in flight
    TuningHistory h = EvalEngine(eopt).run_async(resumed, synthetic_eval);

    EXPECT_TRUE(histories_equal(uninterrupted, h));
    std::remove(ckpt.c_str());
}

TEST(AsyncEngine, CacheShortCircuitsRepeatAsyncRuns)
{
    SearchSpace s = synthetic_space();
    EvalCache cache;
    RandomSearchOptions opt;
    opt.budget = 16;
    opt.seed = 7;

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    eopt.cache = &cache;
    eopt.cache_namespace = "async-test";

    RandomSearchTuner first(s, opt, false);
    TuningHistory h1 = EvalEngine(eopt).run(first, synthetic_eval);
    std::uint64_t hits_before = cache.hits();

    RandomSearchTuner second(s, opt, false);
    TuningHistory h2 = EvalEngine(eopt).run(second, synthetic_eval);

    EXPECT_EQ(h2.size(), 16u);
    EXPECT_EQ(cache.hits(), hits_before + 16);
    EXPECT_EQ(h1.best_value, h2.best_value);
}

TEST(AsyncEngine, ObjectiveExceptionIsRethrownAfterDraining)
{
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 24;
    opt.seed = 13;
    RandomSearchTuner tuner(s, opt, false);

    std::atomic<int> calls{0};
    auto flaky = [&](const Configuration& c, RngEngine& rng) {
        if (calls.fetch_add(1) == 5)
            throw std::runtime_error("compiler segfault");
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return synthetic_eval(c, rng);
    };

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    EvalEngine engine(eopt);
    EXPECT_THROW(engine.drive_async(tuner, flaky), std::runtime_error);
    // Everything dispatched before the abort drained cleanly.
    EXPECT_LT(tuner.history().size(), 24u);
}

TEST(AsyncEngine, CallbackExceptionIsRethrownAfterDraining)
{
    // An exception from the caller's on_result callback (or the tuner)
    // must drain the in-flight work before unwinding — the pool workers
    // reference drive_async's stack until the last result lands.
    SearchSpace s = synthetic_space();
    RandomSearchOptions opt;
    opt.budget = 24;
    opt.seed = 29;
    RandomSearchTuner tuner(s, opt, false);

    auto slowish = [](const Configuration& c, RngEngine& rng) {
        EvalResult r = synthetic_eval(c, rng);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        return r;
    };

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    EvalEngine engine(eopt);
    int told = 0;
    EXPECT_THROW(engine.drive_async(tuner, slowish, -1,
                                    [&](const AsyncEvent&) {
                                        if (++told == 3)
                                            throw std::runtime_error(
                                                "client went away");
                                    }),
                 std::runtime_error);
    // The abort happened at the 3rd tell; nothing was told afterwards.
    EXPECT_EQ(told, 3);
    EXPECT_EQ(tuner.history().size(), 3u);
}

// ---- Suggest-ahead pipelining -------------------------------------------

/**
 * Audits the suggest-ahead discipline: every tuner entry asserts no other
 * call is in progress (the engine must serialize ALL tuner access even
 * though the speculative suggest runs on a pool lane), and every
 * suggest_with_pending checks its pending set is exactly the
 * suggested-but-not-yet-observed multiset — i.e. the speculation never
 * runs against a stale or incomplete view of the in-flight work, and no
 * result is ever told twice or dropped.
 */
class PendingAuditTuner : public AskTellTuner {
 public:
  explicit PendingAuditTuner(AskTellTuner& inner) : inner_(inner) {}

  std::vector<Configuration>
  suggest(int n) override
  {
      Guard g(this);
      std::lock_guard<std::mutex> lock(mu_);
      return record(inner_.suggest(n));
  }
  std::vector<Configuration>
  suggest_with_pending(int n,
                       const std::vector<Configuration>& pending) override
  {
      Guard g(this);
      std::lock_guard<std::mutex> lock(mu_);
      std::map<std::size_t, int> claimed;
      for (const Configuration& c : pending)
          claimed[config_hash(c)] += 1;
      if (claimed != outstanding_)
          stale_pending_.fetch_add(1);
      return record(inner_.suggest_with_pending(n, pending));
  }
  void
  observe(const std::vector<Configuration>& configs,
          const std::vector<EvalResult>& results) override
  {
      Guard g(this);
      std::lock_guard<std::mutex> lock(mu_);
      for (const Configuration& c : configs) {
          std::size_t h = config_hash(c);
          observed_[h] += 1;
          if (--outstanding_[h] <= 0)
              outstanding_.erase(h);
      }
      inner_.observe(configs, results);
  }
  int remaining() const override { return inner_.remaining(); }
  std::uint64_t run_seed() const override { return inner_.run_seed(); }
  const TuningHistory& history() const override { return inner_.history(); }
  TuningHistory& mutable_history() override
  {
      return inner_.mutable_history();
  }
  TuningHistory take_history() override { return inner_.take_history(); }

  const std::map<std::size_t, int>& suggested() const { return suggested_; }
  const std::map<std::size_t, int>& observed() const { return observed_; }
  int concurrent_entries() const { return concurrent_.load(); }
  int stale_pending_calls() const { return stale_pending_.load(); }

 private:
  struct Guard {
    explicit Guard(PendingAuditTuner* t) : t_(t)
    {
        if (t_->depth_.fetch_add(1) != 0)
            t_->concurrent_.fetch_add(1);
    }
    ~Guard() { t_->depth_.fetch_sub(1); }
    PendingAuditTuner* t_;
  };

  std::vector<Configuration>
  record(std::vector<Configuration> out)
  {
      for (const Configuration& c : out) {
          std::size_t h = config_hash(c);
          suggested_[h] += 1;
          outstanding_[h] += 1;
      }
      return out;
  }

  AskTellTuner& inner_;
  std::mutex mu_;
  std::map<std::size_t, int> suggested_;
  std::map<std::size_t, int> observed_;
  std::map<std::size_t, int> outstanding_;
  std::atomic<int> depth_{0};
  std::atomic<int> concurrent_{0};
  std::atomic<int> stale_pending_{0};
};

TEST(SuggestAhead, SingleSlotIsBitForBitIdenticalToSerial)
{
    // With one slot there is nothing to overlap: the knob must disable
    // itself and reproduce the non-pipelined (== serial) run exactly.
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 24;
    opt.doe_samples = 8;
    opt.seed = 42;

    TuningHistory serial = Tuner(s, opt).run(synthetic_eval);

    Tuner tuner(s, opt);
    EvalEngineOptions eopt;
    eopt.num_threads = 3;
    eopt.batch_size = 1;
    eopt.async_mode = true;
    eopt.suggest_ahead = true;
    TuningHistory ahead = EvalEngine(eopt).run(tuner, synthetic_eval);

    ASSERT_EQ(serial.size(), ahead.size());
    EXPECT_TRUE(histories_equal(serial, ahead));
}

TEST(SuggestAhead, StressExactlyOnceUnderHeavyTailedDelays)
{
    // Heavy-tailed evaluation times (mostly sub-millisecond, a fat tail
    // of 20-60 ms stragglers) drive maximal overlap between speculation
    // and landing results. The audit wrapper must observe: zero
    // concurrent tuner entries, zero stale pending snapshots, and a
    // suggested multiset identical to the observed one (exactly-once
    // tells, nothing dropped).
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 28;
    opt.doe_samples = 8;
    opt.seed = 17;
    Tuner inner(s, opt);
    PendingAuditTuner tuner(inner);

    auto heavy_tailed = [](const Configuration& c, RngEngine& rng) {
        EvalResult r = synthetic_eval(c, rng);
        if (rng.uniform() < 0.2)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<int>(rng.uniform(20.0, 60.0))));
        else
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<int>(rng.uniform(100.0, 800.0))));
        return r;
    };

    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    eopt.suggest_ahead = true;
    TuningHistory h = EvalEngine(eopt).run(tuner, heavy_tailed);
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);

    EXPECT_EQ(h.size(), 28u);
    EXPECT_EQ(tuner.concurrent_entries(), 0);
    EXPECT_EQ(tuner.stale_pending_calls(), 0);
    EXPECT_EQ(tuner.suggested(), tuner.observed());
    // The pipeline actually engaged: speculative suggests were launched
    // and at least one refilled a slot.
    EXPECT_GE(delta.value("engine.suggest_ahead_total"), 1.0);
    EXPECT_GE(delta.value("engine.suggest_ahead_used_total"), 1.0);
}

TEST(SuggestAhead, MaxEvalsSplitLosesNoSuggestions)
{
    // Stopping a pipelined drive mid-stream (max_evals) and continuing
    // with a second drive must not lose or re-tell the speculated
    // suggestion that was in the ready queue at the cut: the launch gate
    // only speculates when the result can still be dispatched within the
    // caps.
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 22;
    opt.doe_samples = 6;
    opt.seed = 31;
    Tuner inner(s, opt);
    PendingAuditTuner tuner(inner);

    auto jittered = [](const Configuration& c, RngEngine& rng) {
        EvalResult r = synthetic_eval(c, rng);
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int>(rng.uniform(100.0, 3000.0))));
        return r;
    };

    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = true;
    eopt.suggest_ahead = true;
    EvalEngine engine(eopt);
    engine.drive_async(tuner, jittered, /*max_evals=*/9);
    EXPECT_EQ(tuner.history().size(), 9u);
    engine.drive_async(tuner, jittered);

    TuningHistory h = tuner.take_history();
    ASSERT_EQ(h.size(), 22u);
    std::map<std::size_t, int> counts = config_multiset(h);
    EXPECT_EQ(counts.size(), 22u);  // tuner dedups; nothing told twice
    EXPECT_EQ(tuner.concurrent_entries(), 0);
    EXPECT_EQ(tuner.stale_pending_calls(), 0);
    EXPECT_EQ(tuner.suggested(), tuner.observed());
}

TEST(AsyncEngine, SuiteRunnerAsyncCompletesBudgetAcrossMethods)
{
    const Benchmark& b = suite::find_benchmark("SDDMM/email-Enron");
    const suite::Method methods[] = {suite::Method::kUniform,
                                     suite::Method::kAtfOpenTuner,
                                     suite::Method::kYtopt};
    for (suite::Method m : methods) {
        EvalEngineOptions eopt;
        eopt.num_threads = 4;
        eopt.batch_size = 4;
        TuningHistory h = suite::run_method_async(b, m, 14, 19, eopt);
        EXPECT_EQ(h.size(), 14u) << suite::method_name(m);
        EXPECT_TRUE(h.best_config.has_value()) << suite::method_name(m);
    }
}

TEST(AsyncEngine, RunMethodAsyncAtSlot1MatchesRunMethod)
{
    const Benchmark& b = suite::find_benchmark("SDDMM/email-Enron");
    TuningHistory serial =
        suite::run_method(b, suite::Method::kBaco, 12, 31);
    EvalEngineOptions eopt;
    eopt.num_threads = 2;
    eopt.batch_size = 1;
    TuningHistory async = suite::run_method_async(
        b, suite::Method::kBaco, 12, 31, eopt);
    EXPECT_TRUE(histories_equal(serial, async));
}

}  // namespace
}  // namespace baco
