// The BaCO tuner end-to-end on synthetic objectives.

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"

namespace baco {
namespace {

/** Mixed-type space with a known constraint and a known optimum. */
SearchSpace
synthetic_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_categorical("mode", {"a", "b"});
    s.add_ordinal("unroll", {1, 2, 4, 8}, true);
    s.add_constraint("unroll <= tile");
    return s;
}

/** Smooth objective: optimum at tile=32, mode=b, unroll=4 -> value 1. */
EvalResult
synthetic_eval(const Configuration& c, RngEngine&)
{
    double tile = static_cast<double>(as_int(c[0]));
    bool mode_b = as_int(c[1]) == 1;
    double unroll = static_cast<double>(as_int(c[2]));
    double v = 1.0 + std::pow(std::log2(tile / 32.0), 2) +
               (mode_b ? 0.0 : 1.5) + 0.5 * std::pow(std::log2(unroll / 4.0), 2);
    return EvalResult{v, true};
}

TEST(Tuner, FindsNearOptimumWithinBudget)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 30;
    opt.doe_samples = 8;
    opt.seed = 1;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    EXPECT_EQ(h.size(), 30u);
    EXPECT_LE(h.best_value, 1.6);  // optimum is 1.0
    ASSERT_TRUE(h.best_config.has_value());
    EXPECT_TRUE(s.satisfies(*h.best_config));
}

TEST(Tuner, AllEvaluatedConfigsSatisfyKnownConstraints)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 25;
    opt.seed = 2;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    for (const Observation& o : h.observations)
        EXPECT_TRUE(s.satisfies(o.config));
}

TEST(Tuner, AvoidsDuplicateEvaluations)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 40;
    opt.seed = 3;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    std::set<std::size_t> hashes;
    for (const Observation& o : h.observations)
        hashes.insert(config_hash(o.config));
    // The feasible space (8*2*4 minus constraint violations) is larger than
    // the budget, so no duplicates should be needed.
    EXPECT_EQ(hashes.size(), h.size());
}

TEST(Tuner, DeterministicGivenSeed)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 20;
    opt.seed = 4;
    TuningHistory h1 = Tuner(s, opt).run(synthetic_eval);
    TuningHistory h2 = Tuner(s, opt).run(synthetic_eval);
    ASSERT_EQ(h1.size(), h2.size());
    for (std::size_t i = 0; i < h1.size(); ++i) {
        EXPECT_TRUE(configs_equal(h1.observations[i].config,
                                  h2.observations[i].config));
    }
}

TEST(Tuner, HandlesHiddenConstraints)
{
    SearchSpace s = synthetic_space();
    // Half the space fails at evaluation time (hidden): mode "a" crashes.
    BlackBoxFn eval = [](const Configuration& c, RngEngine& rng) {
        if (as_int(c[1]) == 0)
            return EvalResult::infeasible();
        return synthetic_eval(c, rng);
    };
    TunerOptions opt;
    opt.budget = 30;
    opt.seed = 5;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(eval);
    ASSERT_TRUE(h.best_config.has_value());
    EXPECT_EQ(as_int((*h.best_config)[1]), 1);
    // The feasibility model should steer sampling: the late phase should
    // try mode b far more often than mode a.
    int late_feasible = 0, late_total = 0;
    for (std::size_t i = h.size() / 2; i < h.size(); ++i) {
        late_total += 1;
        late_feasible += h.observations[i].feasible ? 1 : 0;
    }
    EXPECT_GT(late_feasible, late_total / 2);
}

TEST(Tuner, SurvivesAllInfeasibleStart)
{
    SearchSpace s = synthetic_space();
    // Everything is infeasible: the tuner must not crash or loop forever.
    BlackBoxFn eval = [](const Configuration&, RngEngine&) {
        return EvalResult::infeasible();
    };
    TunerOptions opt;
    opt.budget = 15;
    opt.seed = 6;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(eval);
    EXPECT_EQ(h.size(), 15u);
    EXPECT_FALSE(h.best_config.has_value());
    EXPECT_TRUE(std::isinf(h.best_value));
}

TEST(Tuner, BudgetSmallerThanDoe)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 4;
    opt.doe_samples = 10;
    opt.seed = 7;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    EXPECT_EQ(h.size(), 4u);
}

TEST(Tuner, RfSurrogateVariantRuns)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 25;
    opt.seed = 8;
    opt.surrogate = TunerOptions::Surrogate::kRandomForest;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    EXPECT_EQ(h.size(), 25u);
    EXPECT_TRUE(h.best_config.has_value());
}

TEST(Tuner, BacoMinusMinusRunsAndIsWorseOrEqualOnAverage)
{
    SearchSpace s = synthetic_space();
    double full = 0.0, reduced = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        TunerOptions a = TunerOptions::baco_defaults();
        a.budget = 25;
        a.seed = seed;
        TunerOptions b = TunerOptions::baco_minus_minus();
        b.budget = 25;
        b.seed = seed;
        full += Tuner(s, a).run(synthetic_eval).best_value;
        reduced += Tuner(s, b).run(synthetic_eval).best_value;
    }
    EXPECT_LE(full, reduced + 0.5);  // full BaCO should not be clearly worse
}

// ---- Incremental surrogate refit policy ---------------------------------

TEST(TunerIncremental, DeterministicGivenSeedInBothModes)
{
    // Same-seed reproducibility must hold in each mode independently
    // (the default-on incremental path is already covered by
    // Tuner.DeterministicGivenSeed; this pins the escape hatch too).
    SearchSpace s = synthetic_space();
    for (bool incremental : {true, false}) {
        TunerOptions opt;
        opt.budget = 20;
        opt.seed = 11;
        opt.incremental_fit = incremental;
        TuningHistory h1 = Tuner(s, opt).run(synthetic_eval);
        TuningHistory h2 = Tuner(s, opt).run(synthetic_eval);
        ASSERT_EQ(h1.size(), h2.size());
        for (std::size_t i = 0; i < h1.size(); ++i) {
            EXPECT_TRUE(configs_equal(h1.observations[i].config,
                                      h2.observations[i].config))
                << "incremental=" << incremental << " step " << i;
        }
    }
}

TEST(TunerIncremental, QualityParityWithFullRefits)
{
    // Incremental mode cannot produce bit-identical suggestion sequences
    // to the always-refit mode: a full refit draws multistart
    // hyperparameter samples from the shared RNG while an append draws
    // nothing, so the modes' RNG streams diverge after the first skipped
    // refit by construction. The parity claim that IS testable — and the
    // one that matters — is search quality: both modes maintain the same
    // posterior to ~1e-9 between refits, so across seeds neither may
    // systematically out-search the other. 0.4 bounds the seed-averaged
    // best-value gap at ~1/3 of the objective's unit scale (optimum 1.0,
    // range ~4), far below any systematic-regression signal.
    SearchSpace s = synthetic_space();
    double inc_sum = 0.0, full_sum = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        TunerOptions a;
        a.budget = 25;
        a.seed = seed;
        a.incremental_fit = true;
        TunerOptions b = a;
        b.incremental_fit = false;
        inc_sum += Tuner(s, a).run(synthetic_eval).best_value;
        full_sum += Tuner(s, b).run(synthetic_eval).best_value;
    }
    EXPECT_NEAR(inc_sum / 6.0, full_sum / 6.0, 0.4);
}

TEST(TunerIncremental, HiddenConstraintSteeringInBothModes)
{
    // The feasibility-model path (hidden constraints) must work
    // identically well with incremental refits: mode "a" crashes at
    // evaluation time, and in both modes the late phase must have learned
    // to steer toward mode "b".
    SearchSpace s = synthetic_space();
    BlackBoxFn eval = [](const Configuration& c, RngEngine& rng) {
        if (as_int(c[1]) == 0)
            return EvalResult::infeasible();
        return synthetic_eval(c, rng);
    };
    for (bool incremental : {true, false}) {
        TunerOptions opt;
        opt.budget = 30;
        opt.seed = 5;
        opt.incremental_fit = incremental;
        Tuner tuner(s, opt);
        TuningHistory h = tuner.run(eval);
        ASSERT_TRUE(h.best_config.has_value())
            << "incremental=" << incremental;
        EXPECT_EQ(as_int((*h.best_config)[1]), 1)
            << "incremental=" << incremental;
        int late_feasible = 0, late_total = 0;
        for (std::size_t i = h.size() / 2; i < h.size(); ++i) {
            late_total += 1;
            late_feasible += h.observations[i].feasible ? 1 : 0;
        }
        EXPECT_GT(late_feasible, late_total / 2)
            << "incremental=" << incremental;
    }
}

TEST(TunerIncremental, RefitCadenceKnobs)
{
    // refit_every=1 forces a full refit on (nearly) every tell; a huge
    // cadence with a huge drift threshold leans maximally on appends.
    // Both extremes must still find the optimum region and stay
    // deterministic.
    SearchSpace s = synthetic_space();
    for (int cadence : {1, 1000}) {
        TunerOptions opt;
        opt.budget = 25;
        opt.seed = 12;
        opt.incremental_fit = true;
        opt.refit_every = cadence;
        opt.refit_nll_drift = cadence == 1000 ? 1e9 : 1.0;
        TuningHistory h1 = Tuner(s, opt).run(synthetic_eval);
        TuningHistory h2 = Tuner(s, opt).run(synthetic_eval);
        EXPECT_EQ(h1.size(), 25u);
        EXPECT_LE(h1.best_value, 2.0) << "cadence " << cadence;
        ASSERT_EQ(h1.size(), h2.size());
        for (std::size_t i = 0; i < h1.size(); ++i)
            EXPECT_TRUE(configs_equal(h1.observations[i].config,
                                      h2.observations[i].config))
                << "cadence " << cadence << " step " << i;
    }
}

TEST(Tuner, ContinuousParameterSupport)
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_real("y", 0.0, 1.0);
    BlackBoxFn eval = [](const Configuration& c, RngEngine&) {
        double x = as_real(c[0]), y = as_real(c[1]);
        return EvalResult{(x - 0.3) * (x - 0.3) + (y - 0.7) * (y - 0.7) + 0.1,
                          true};
    };
    TunerOptions opt;
    opt.budget = 30;
    opt.seed = 9;
    opt.log_objective = false;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(eval);
    EXPECT_LT(h.best_value, 0.15);
}

TEST(Tuner, TracksTimingBreakdown)
{
    SearchSpace s = synthetic_space();
    TunerOptions opt;
    opt.budget = 15;
    opt.seed = 10;
    Tuner tuner(s, opt);
    TuningHistory h = tuner.run(synthetic_eval);
    EXPECT_GE(h.tuner_seconds, 0.0);
    EXPECT_GE(h.eval_seconds, 0.0);
}

}  // namespace
}  // namespace baco
