// The coordinator + worker fleet: shard-deterministic distributed runs
// matching EvalEngine, worker-failure recovery, straggler re-dispatch,
// backpressure, and the checkpointed kill/resume of a distributed run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/eval_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/coordinator.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"
#include "suite/runner.hpp"

namespace baco::serve {
namespace {

constexpr const char* kBench = "SDDMM/email-Enron";

/** A worker fleet of loopback threads attached to a coordinator. */
struct Fleet {
  Coordinator coordinator;
  std::vector<std::thread> threads;

  explicit Fleet(int workers, CoordinatorOptions opt = CoordinatorOptions{})
      : coordinator(opt)
  {
      threads = attach_loopback_workers(coordinator, workers);
      EXPECT_EQ(coordinator.num_workers(),
                static_cast<std::size_t>(workers));
  }

  ~Fleet()
  {
      coordinator.shutdown();
      for (std::thread& t : threads)
          t.join();
  }
};

TEST(ServeDistributed, TwoWorkersReproduceEvalEngineTrajectory)
{
    // The headline acceptance check: a coordinator with 2 loopback
    // workers tuning a registry benchmark produces the same incumbent
    // trajectory as EvalEngine batch mode with the same seed.
    const Benchmark& b = suite::find_benchmark(kBench);
    const int budget = 16;
    const std::uint64_t seed = 5;
    const int batch = 4;

    EvalEngineOptions eopt;
    eopt.batch_size = batch;
    TuningHistory reference = suite::run_method_batched(
        b, suite::Method::kBaco, budget, seed, eopt);

    suite::DistributedOptions dopt;
    dopt.workers = 2;
    dopt.batch_size = batch;
    TuningHistory distributed = suite::run_method_distributed(
        b, suite::Method::kBaco, budget, seed, dopt);

    ASSERT_EQ(distributed.size(), reference.size());
    EXPECT_TRUE(histories_equal(reference, distributed));
    EXPECT_EQ(reference.best_trajectory(), distributed.best_trajectory());
}

TEST(ServeDistributed, WorkerCountDoesNotChangeHistory)
{
    // Shard-determinism: 1, 2 or 3 workers — identical histories.
    const Benchmark& b = suite::find_benchmark(kBench);
    suite::DistributedOptions one;
    one.workers = 1;
    one.batch_size = 3;
    TuningHistory h1 = suite::run_method_distributed(
        b, suite::Method::kUniform, 12, 9, one);
    suite::DistributedOptions three = one;
    three.workers = 3;
    TuningHistory h3 = suite::run_method_distributed(
        b, suite::Method::kUniform, 12, 9, three);
    EXPECT_TRUE(histories_equal(h1, h3));
}

TEST(ServeDistributed, BatchOneMatchesSerialRunExactly)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    TuningHistory serial = suite::run_method(b, suite::Method::kUniform,
                                             10, 41);
    suite::DistributedOptions dopt;
    dopt.workers = 2;
    dopt.batch_size = 1;
    TuningHistory distributed = suite::run_method_distributed(
        b, suite::Method::kUniform, 10, 41, dopt);
    EXPECT_TRUE(histories_equal(serial, distributed));
}

TEST(ServeDistributed, AsyncSingleSlotMatchesSerialRun)
{
    // One slot in flight serializes the async drive completely, so even
    // the tell-as-results-land mode reproduces the serial loop exactly.
    const Benchmark& b = suite::find_benchmark(kBench);
    TuningHistory serial =
        suite::run_method(b, suite::Method::kBaco, 12, 17);
    suite::DistributedOptions dopt;
    dopt.workers = 2;
    dopt.batch_size = 1;
    dopt.async = true;
    TuningHistory async = suite::run_method_distributed(
        b, suite::Method::kBaco, 12, 17, dopt);
    EXPECT_TRUE(histories_equal(serial, async));
}

TEST(ServeDistributed, AsyncDriveStreamsEveryResultAndKillResumeRecovers)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    const int budget = 18;
    const std::uint64_t seed = 23;
    const int slots = 4;

    std::string ckpt = testing::TempDir() + "baco_dist_async_ckpt.jsonl";
    std::string snapshot = testing::TempDir() + "baco_dist_async_kill.jsonl";
    std::remove(ckpt.c_str());
    std::remove(snapshot.c_str());

    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = seed;

    // First leg: full async fleet run, photographing the checkpoint
    // right after the 6th tell — evaluations still in flight.
    std::uint64_t streamed = 0;
    {
        Fleet fleet(3);
        std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
            *space, suite::Method::kBaco, budget, b.doe_samples, seed);
        fleet.coordinator.drive_async(
            *tuner, spec, slots, -1, ckpt, [&](const AsyncEvent& ev) {
                EXPECT_EQ(ev.evals, streamed + 1);
                if (++streamed == 6) {
                    std::FILE* in = std::fopen(ckpt.c_str(), "rb");
                    std::FILE* out = std::fopen(snapshot.c_str(), "wb");
                    ASSERT_NE(in, nullptr);
                    ASSERT_NE(out, nullptr);
                    char buf[4096];
                    std::size_t n;
                    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
                        std::fwrite(buf, 1, n, out);
                    std::fclose(in);
                    std::fclose(out);
                }
            });
        EXPECT_EQ(tuner->history().size(),
                  static_cast<std::size_t>(budget));
        EXPECT_EQ(streamed, static_cast<std::uint64_t>(budget));
    }

    std::optional<CheckpointData> snap = load_checkpoint(snapshot);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->history.size(), 6u);
    ASSERT_GE(snap->pending.size(), 1u);

    // Second leg: a fresh fleet (different size, to prove placement
    // independence) resumes the killed run and finishes the budget
    // without double-telling anything.
    Fleet fleet2(2);
    std::unique_ptr<AskTellTuner> resumed = suite::make_ask_tell(
        *space, suite::Method::kBaco, budget, b.doe_samples, seed);
    std::vector<PendingEval> pending;
    ASSERT_TRUE(resume_from_checkpoint(snapshot, *resumed, &pending));
    ASSERT_EQ(pending.size(), snap->pending.size());
    std::vector<std::size_t> pending_hashes;
    for (const PendingEval& p : pending)
        pending_hashes.push_back(config_hash(p.config));

    fleet2.coordinator.drive_async(*resumed, spec, slots, -1, {}, {},
                                   std::move(pending));
    const TuningHistory& h = resumed->history();
    ASSERT_EQ(h.size(), static_cast<std::size_t>(budget));
    std::map<std::size_t, int> counts;
    for (const Observation& o : h.observations)
        counts[config_hash(o.config)] += 1;
    EXPECT_EQ(counts.size(), static_cast<std::size_t>(budget));
    for (std::size_t ph : pending_hashes)
        EXPECT_EQ(counts[ph], 1) << "in-flight config lost or re-told";

    std::remove(ckpt.c_str());
    std::remove(snapshot.c_str());
}

TEST(ServeDistributed, SuggestAheadSingleSlotMatchesSerialRun)
{
    // CoordinatorOptions::suggest_ahead is ignored at one slot — there
    // is nothing to overlap — so the fleet must still reproduce the
    // serial loop bit-for-bit, prefetch knob and all.
    const Benchmark& b = suite::find_benchmark(kBench);
    TuningHistory serial =
        suite::run_method(b, suite::Method::kBaco, 12, 17);

    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    CoordinatorOptions copt;
    copt.suggest_ahead = true;
    Fleet fleet(2, copt);
    std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
        *space, suite::Method::kBaco, 12, b.doe_samples, 17);
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 17;
    fleet.coordinator.drive_async(*tuner, spec, /*slots=*/1);
    EXPECT_TRUE(histories_equal(serial, tuner->history()));
}

TEST(ServeDistributed, SuggestAheadFleetPrefetchesAndStaysExactlyOnce)
{
    // Multi-slot suggest-ahead across a real worker fleet: the drive
    // must complete the budget with every suggestion told exactly once,
    // and the coord.suggest_ahead_* counters must show the prefetch
    // actually launched and was consumed.
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    const int budget = 18;

    CoordinatorOptions copt;
    copt.suggest_ahead = true;
    Fleet fleet(3, copt);
    std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
        *space, suite::Method::kBaco, budget, b.doe_samples, 23);
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 23;

    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    fleet.coordinator.drive_async(*tuner, spec, /*slots=*/4);
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);

    const TuningHistory& h = tuner->history();
    EXPECT_EQ(h.size(), static_cast<std::size_t>(budget));
    std::map<std::size_t, int> counts;
    for (const Observation& o : h.observations)
        ++counts[config_hash(o.config)];
    for (const auto& [hash, n] : counts)
        EXPECT_EQ(n, 1) << "config told more than once (hash " << hash
                        << ")";
    EXPECT_GE(delta.value("coord.suggest_ahead_total"), 1.0);
    EXPECT_GE(delta.value("coord.suggest_ahead_used_total"), 1.0);
}

TEST(ServeDistributed, EvaluateBatchAssemblesInInputOrder)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    Fleet fleet(3);

    RngEngine rng(7);
    std::vector<Configuration> configs;
    for (int i = 0; i < 10; ++i)
        configs.push_back(space->sample_unconstrained(rng));

    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 99;
    spec.first_index = 12;
    double eval_seconds = 0.0;
    std::vector<EvalResult> sharded =
        fleet.coordinator.evaluate_batch(spec, configs, &eval_seconds);

    ASSERT_EQ(sharded.size(), configs.size());
    EXPECT_GT(eval_seconds, 0.0);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EvalResult local = evaluate_on(b, configs[i], 99, 12 + i);
        EXPECT_EQ(sharded[i].value, local.value) << i;
        EXPECT_EQ(sharded[i].feasible, local.feasible) << i;
    }
}

TEST(ServeDistributed, SurvivesWorkerDeathMidRun)
{
    // One worker's transport closes mid-run; its in-flight tasks are
    // re-queued onto the survivor and the run completes with the same
    // history (determinism is placement-independent).
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});

    Coordinator coordinator;
    // Worker 1: a normal loopback worker.
    auto [c1, w1] = loopback_pair();
    std::thread t1([t = std::shared_ptr<Transport>(std::move(w1))] {
        run_worker_loop(*t);
    });
    ASSERT_GE(coordinator.add_worker(std::move(c1)), 0);
    // Worker 2: registers, answers a couple of frames, then dies.
    auto [c2, w2] = loopback_pair();
    std::thread t2([t = std::shared_ptr<Transport>(std::move(w2))] {
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        hello.capacity = 1;
        t->send(encode(hello));
        std::string line;
        int answered = 0;
        while (answered < 2 && t->recv(line) == RecvStatus::kOk) {
            Message req;
            if (!decode(line, req) || req.type != MsgType::kEvaluate)
                break;
            const Benchmark& bench = suite::find_benchmark(req.benchmark);
            EvalResult r =
                evaluate_on(bench, req.config, req.seed, req.index);
            Message reply;
            reply.type = MsgType::kResult;
            reply.id = req.id;
            reply.value = r.value;
            reply.feasible = r.feasible;
            t->send(encode(reply));
            ++answered;
        }
        t->close();  // the "crash"
    });
    ASSERT_GE(coordinator.add_worker(std::move(c2)), 0);
    ASSERT_EQ(coordinator.num_workers(), 2u);

    std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
        *space, suite::Method::kUniform, 12, b.doe_samples, 31);
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 31;
    TuningHistory history = coordinator.run(*tuner, spec, 4);
    coordinator.shutdown();
    t1.join();
    t2.join();

    EXPECT_EQ(history.size(), 12u);
    EXPECT_LE(coordinator.num_workers(), 1u);

    suite::DistributedOptions dopt;
    dopt.workers = 2;
    dopt.batch_size = 4;
    TuningHistory reference = suite::run_method_distributed(
        b, suite::Method::kUniform, 12, 31, dopt);
    EXPECT_TRUE(histories_equal(reference, history));
}

TEST(ServeDistributed, StragglerIsReDispatchedToFreeWorker)
{
    // Worker 2 swallows its first evaluate frame (a straggler); the
    // coordinator's deadline re-dispatches the task to worker 1 and the
    // batch completes. The duplicate answer is ignored by id.
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});

    CoordinatorOptions copt;
    copt.straggler_ms = 50;
    copt.poll_ms = 5;
    Coordinator coordinator(copt);

    auto [c1, w1] = loopback_pair();
    std::thread t1([t = std::shared_ptr<Transport>(std::move(w1))] {
        run_worker_loop(*t);
    });
    ASSERT_GE(coordinator.add_worker(std::move(c1)), 0);

    std::atomic<int> swallowed{0};
    auto [c2, w2] = loopback_pair();
    std::thread t2([t = std::shared_ptr<Transport>(std::move(w2)),
                    &swallowed] {
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        hello.capacity = 1;
        t->send(encode(hello));
        std::string line;
        while (t->recv(line) == RecvStatus::kOk) {
            Message req;
            if (!decode(line, req) || req.type != MsgType::kEvaluate)
                break;  // shutdown
            swallowed.fetch_add(1);
            // Never answer: a hung evaluation.
        }
    });
    ASSERT_GE(coordinator.add_worker(std::move(c2)), 0);

    RngEngine rng(3);
    std::vector<Configuration> configs;
    for (int i = 0; i < 6; ++i)
        configs.push_back(space->sample_unconstrained(rng));
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 17;
    std::vector<EvalResult> results =
        coordinator.evaluate_batch(spec, configs);
    coordinator.shutdown();
    t1.join();
    t2.join();

    ASSERT_EQ(results.size(), configs.size());
    EXPECT_GE(swallowed.load(), 1);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EvalResult local = evaluate_on(b, configs[i], 17, i);
        EXPECT_EQ(results[i].value, local.value) << i;
    }
}

TEST(ServeDistributed, GarbageEmittingWorkerDoesNotWedgeBatch)
{
    // A worker that answers with undecodable frames (e.g. corruption on
    // an ssh pipe) is declared dead and its tasks are re-queued onto the
    // healthy worker — the batch must complete, not hang.
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});

    Coordinator coordinator;
    auto [c1, w1] = loopback_pair();
    std::thread t1([t = std::shared_ptr<Transport>(std::move(w1))] {
        run_worker_loop(*t);
    });
    ASSERT_GE(coordinator.add_worker(std::move(c1)), 0);

    auto [c2, w2] = loopback_pair();
    std::thread t2([t = std::shared_ptr<Transport>(std::move(w2))] {
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        t->send(encode(hello));
        std::string line;
        while (t->recv(line) == RecvStatus::kOk) {
            Message req;
            if (!decode(line, req) || req.type != MsgType::kEvaluate)
                break;
            t->send("%%% not a frame %%%");
        }
    });
    ASSERT_GE(coordinator.add_worker(std::move(c2)), 0);

    RngEngine rng(5);
    std::vector<Configuration> configs;
    for (int i = 0; i < 6; ++i)
        configs.push_back(space->sample_unconstrained(rng));
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 23;
    std::vector<EvalResult> results =
        coordinator.evaluate_batch(spec, configs);
    coordinator.shutdown();
    t1.join();
    t2.join();

    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EvalResult local = evaluate_on(b, configs[i], 23, i);
        EXPECT_EQ(results[i].value, local.value) << i;
    }
}

TEST(ServeDistributed, ThrowsWhenAllWorkersAreGone)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});

    Coordinator coordinator;
    auto [c1, w1] = loopback_pair();
    std::thread t1([t = std::shared_ptr<Transport>(std::move(w1))] {
        std::string line;
        Message hello;
        hello.type = MsgType::kHello;
        hello.text = "worker";
        t->send(encode(hello));
        t->recv(line);  // swallow the first evaluate...
        t->close();     // ...and die
    });
    ASSERT_GE(coordinator.add_worker(std::move(c1)), 0);

    RngEngine rng(1);
    std::vector<Configuration> configs = {
        space->sample_unconstrained(rng)};
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = 1;
    EXPECT_THROW(coordinator.evaluate_batch(spec, configs),
                 std::runtime_error);
    t1.join();
}

TEST(ServeDistributed, SharedCacheShortCircuitsDispatch)
{
    const Benchmark& b = suite::find_benchmark(kBench);
    EvalCache cache;
    suite::DistributedOptions dopt;
    dopt.workers = 2;
    dopt.batch_size = 3;
    dopt.cache = &cache;

    TuningHistory h1 = suite::run_method_distributed(
        b, suite::Method::kUniform, 9, 13, dopt);
    EXPECT_EQ(cache.misses(), 9u);
    std::uint64_t hits_before = cache.hits();

    // Second identical run: every lookup hits; no worker dispatch needed.
    TuningHistory h2 = suite::run_method_distributed(
        b, suite::Method::kUniform, 9, 13, dopt);
    EXPECT_TRUE(histories_equal(h1, h2));
    EXPECT_EQ(cache.misses(), 9u);
    EXPECT_EQ(cache.hits(), hits_before + 9u);
}

TEST(ServeDistributed, KilledDistributedRunResumesFromCheckpoint)
{
    // Acceptance scenario: the distributed driver dies mid-run; a new
    // driver restores the tuner from the checkpoint and finishes with
    // the exact uninterrupted history.
    const Benchmark& b = suite::find_benchmark(kBench);
    const int budget = 16;
    const std::uint64_t seed = 53;
    const int batch = 4;
    std::string path =
        testing::TempDir() + "baco_test_distributed.ckpt.jsonl";

    EvalEngineOptions eopt;
    eopt.batch_size = batch;
    TuningHistory reference = suite::run_method_batched(
        b, suite::Method::kBaco, budget, seed, eopt);

    // Interrupted half: coordinator-driven with checkpointing, killed at
    // a batch boundary by capping max_evals.
    std::shared_ptr<SearchSpace> space = b.make_space(SpaceVariant{});
    {
        Fleet fleet(2);
        std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
            *space, suite::Method::kBaco, budget, b.doe_samples, seed);
        BatchSpec spec;
        spec.benchmark = b.name;
        spec.run_seed = seed;
        fleet.coordinator.drive(*tuner, spec, batch, 8, path);
        ASSERT_EQ(tuner->history().size(), 8u);
        // Fleet destructor = the whole driver process dying.
    }

    // Resumed half: a fresh fleet and tuner pick the run back up.
    Fleet fleet(2);
    std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
        *space, suite::Method::kBaco, budget, b.doe_samples, seed);
    ASSERT_TRUE(resume_from_checkpoint(path, *tuner));
    ASSERT_EQ(tuner->history().size(), 8u);
    BatchSpec spec;
    spec.benchmark = b.name;
    spec.run_seed = seed;
    TuningHistory final_history =
        fleet.coordinator.run(*tuner, spec, batch);

    EXPECT_TRUE(histories_equal(reference, final_history));
    EXPECT_EQ(reference.best_value, final_history.best_value);
    std::remove(path.c_str());
}

TEST(ServeDistributed, AddWorkerRejectsBadHandshake)
{
    CoordinatorOptions copt;
    copt.handshake_ms = 200;
    Coordinator coordinator(copt);

    // Wrong role.
    auto [c1, w1] = loopback_pair();
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "client";
    w1->send(encode(hello));
    EXPECT_EQ(coordinator.add_worker(std::move(c1)), -1);

    // Wrong protocol version.
    auto [c2, w2] = loopback_pair();
    hello.text = "worker";
    hello.version = kProtocolVersion + 7;
    w2->send(encode(hello));
    EXPECT_EQ(coordinator.add_worker(std::move(c2)), -1);

    // Silence: handshake times out.
    auto [c3, w3] = loopback_pair();
    EXPECT_EQ(coordinator.add_worker(std::move(c3)), -1);
    EXPECT_EQ(coordinator.num_workers(), 0u);
}

}  // namespace
}  // namespace baco::serve
