// SearchSpace: construction, sampling, constraints, neighbours, encoding.

#include <gtest/gtest.h>

#include "core/search_space.hpp"

namespace baco {
namespace {

SearchSpace
make_mixed_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16}, true);
    s.add_categorical("sched", {"static", "dynamic"});
    s.add_integer("unroll", 1, 4);
    s.add_permutation("perm", 3);
    s.add_constraint("unroll <= tile");
    return s;
}

TEST(SearchSpace, BasicAccessors)
{
    SearchSpace s = make_mixed_space();
    EXPECT_EQ(s.num_params(), 4u);
    EXPECT_EQ(s.index_of("sched"), 1u);
    EXPECT_TRUE(s.has_param("perm"));
    EXPECT_FALSE(s.has_param("nope"));
    EXPECT_THROW(s.index_of("nope"), std::runtime_error);
    EXPECT_TRUE(s.is_fully_discrete());
    EXPECT_DOUBLE_EQ(s.dense_size(), 4.0 * 2 * 4 * 6);
}

TEST(SearchSpace, DuplicateNameRejected)
{
    SearchSpace s;
    s.add_integer("x", 0, 1);
    EXPECT_THROW(s.add_real("x", 0, 1), std::runtime_error);
}

TEST(SearchSpace, ConstraintValidation)
{
    SearchSpace s;
    s.add_integer("a", 0, 3);
    EXPECT_THROW(s.add_constraint("a <= missing"), std::runtime_error);
    s.add_constraint("a >= 1");
    EXPECT_FALSE(s.satisfies({ParamValue{std::int64_t{0}}}));
    EXPECT_TRUE(s.satisfies({ParamValue{std::int64_t{2}}}));
}

TEST(SearchSpace, FunctionalConstraint)
{
    SearchSpace s;
    s.add_permutation("perm", 3);
    s.add_constraint(
        [](const Configuration& c) { return as_permutation(c[0])[0] == 0; },
        {"perm"}, "first element fixed");
    RngEngine rng(1);
    int feasible = 0;
    for (int i = 0; i < 300; ++i)
        feasible += s.satisfies(s.sample_unconstrained(rng)) ? 1 : 0;
    // 1/3 of permutations of 3 elements keep element 0 in place.
    EXPECT_NEAR(feasible / 300.0, 1.0 / 3.0, 0.1);
}

TEST(SearchSpace, SampleFeasibleRespectsConstraints)
{
    SearchSpace s = make_mixed_space();
    RngEngine rng(2);
    for (int i = 0; i < 100; ++i) {
        auto c = s.sample_feasible(rng);
        ASSERT_TRUE(c.has_value());
        EXPECT_TRUE(s.satisfies(*c));
    }
}

TEST(SearchSpace, SampleFeasibleGivesUpOnEmptyRegion)
{
    SearchSpace s;
    s.add_integer("a", 0, 3);
    s.add_constraint("a > 99");
    RngEngine rng(3);
    EXPECT_FALSE(s.sample_feasible(rng, 50).has_value());
}

TEST(SearchSpace, NeighborsChangeExactlyOneParameter)
{
    SearchSpace s = make_mixed_space();
    RngEngine rng(4);
    Configuration c = s.sample_unconstrained(rng);
    for (const Configuration& n : s.neighbors(c, rng)) {
        int diffs = 0;
        for (std::size_t i = 0; i < c.size(); ++i)
            diffs += param_value_equal(c[i], n[i]) ? 0 : 1;
        EXPECT_EQ(diffs, 1);
    }
}

TEST(SearchSpace, EncodeHasDeclaredWidth)
{
    SearchSpace s = make_mixed_space();
    // tile(1) + sched one-hot(2) + unroll(1) + perm(3).
    EXPECT_EQ(s.num_features(), 7u);
    RngEngine rng(5);
    Configuration c = s.sample_unconstrained(rng);
    EXPECT_EQ(s.encode(c).size(), 7u);
}

TEST(SearchSpace, DimDistanceUsesParameterMetric)
{
    SearchSpace s = make_mixed_space();
    Configuration a{ParamValue{std::int64_t{2}}, ParamValue{std::int64_t{0}},
                    ParamValue{std::int64_t{1}},
                    ParamValue{Permutation{0, 1, 2}}};
    Configuration b{ParamValue{std::int64_t{16}}, ParamValue{std::int64_t{1}},
                    ParamValue{std::int64_t{1}},
                    ParamValue{Permutation{0, 1, 2}}};
    EXPECT_DOUBLE_EQ(s.dim_distance(0, a, b), 1.0);  // log-range endpoints
    EXPECT_DOUBLE_EQ(s.dim_distance(1, a, b), 1.0);  // Hamming
    EXPECT_DOUBLE_EQ(s.dim_distance(2, a, b), 0.0);
    EXPECT_DOUBLE_EQ(s.dim_distance(3, a, b), 0.0);
}

TEST(SearchSpace, MakeContextOmitsPermutations)
{
    SearchSpace s = make_mixed_space();
    Configuration c{ParamValue{std::int64_t{4}}, ParamValue{std::int64_t{1}},
                    ParamValue{std::int64_t{2}},
                    ParamValue{Permutation{2, 0, 1}}};
    EvalContext ctx = s.make_context(c);
    EXPECT_EQ(ctx.count("perm"), 0u);
    EXPECT_DOUBLE_EQ(ctx.at("tile"), 4.0);
    EXPECT_DOUBLE_EQ(ctx.at("sched"), 1.0);
}

TEST(SearchSpace, ContinuousSpaceDenseSizeIsInfinite)
{
    SearchSpace s;
    s.add_real("x", 0.0, 1.0);
    s.add_integer("n", 0, 9);
    EXPECT_FALSE(s.is_fully_discrete());
    EXPECT_TRUE(std::isinf(s.dense_size()));
}

TEST(SearchSpace, ConfigToStringIsReadable)
{
    SearchSpace s = make_mixed_space();
    Configuration c{ParamValue{std::int64_t{4}}, ParamValue{std::int64_t{1}},
                    ParamValue{std::int64_t{2}},
                    ParamValue{Permutation{2, 0, 1}}};
    std::string str = s.config_to_string(c);
    EXPECT_NE(str.find("tile=4"), std::string::npos);
    EXPECT_NE(str.find("sched=dynamic"), std::string::npos);
    EXPECT_NE(str.find("perm=[2,0,1]"), std::string::npos);
}

}  // namespace
}  // namespace baco
