// src/obs under test: histogram percentile math against exact sample
// quantiles (the documented bucket-ratio error bound), lock-free
// counter/histogram updates hammered from N threads (the TSAN stage
// runs this binary), registry kind safety, snapshot deltas, and the
// trace buffer's bounded overwrite-oldest eviction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace baco::obs {
namespace {

/** Exact quantile of a sample set (sorted, linear interpolation). */
double
exact_percentile(std::vector<double> v, double q)
{
    std::sort(v.begin(), v.end());
    double rank = q * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    return v[lo] + (rank - static_cast<double>(lo)) * (v[hi] - v[lo]);
}

// The documented approximation bound: linear interpolation inside a
// log-spaced bucket keeps the relative error under the bucket ratio
// 10^(1/8) - 1 ~ 0.334.
constexpr double kMaxRelativeError = 0.34;

void
check_percentiles(const std::vector<double>& samples)
{
    Histogram h;
    for (double v : samples)
        h.record(v);
    HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, samples.size());
    for (double q : {0.50, 0.90, 0.99}) {
        double approx = snap.percentile(q);
        double exact = exact_percentile(samples, q);
        EXPECT_NEAR(approx, exact, exact * kMaxRelativeError)
            << "q=" << q << " n=" << samples.size();
    }
    // Extremes are tracked exactly, not bucket-approximated.
    EXPECT_DOUBLE_EQ(snap.min,
                     *std::min_element(samples.begin(), samples.end()));
    EXPECT_DOUBLE_EQ(snap.max,
                     *std::max_element(samples.begin(), samples.end()));
}

TEST(HistogramPercentiles, UniformDistributionWithinBucketBound)
{
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> dist(1e-3, 0.1);
    std::vector<double> samples(5000);
    for (double& v : samples)
        v = dist(rng);
    check_percentiles(samples);
}

TEST(HistogramPercentiles, LognormalDistributionWithinBucketBound)
{
    // The latency-shaped case: heavy tail across several decades.
    std::mt19937_64 rng(7);
    std::lognormal_distribution<double> dist(std::log(5e-3), 1.2);
    std::vector<double> samples(5000);
    for (double& v : samples)
        v = dist(rng);
    check_percentiles(samples);
}

TEST(HistogramPercentiles, DegenerateAndEdgeInputs)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.5), 0.0);  // empty

    h.record(0.0);    // below the first bucket edge
    h.record(-1.0);   // negative: clamped into bucket 0
    h.record(1e9);    // beyond the last edge: clamped into the top bucket
    HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    // Percentiles stay inside the observed bounds even for clamped
    // values far outside the bucket range.
    EXPECT_GE(snap.percentile(0.99), snap.min);
    EXPECT_LE(snap.percentile(0.99), snap.max);

    Histogram single;
    single.record(0.004);
    EXPECT_NEAR(single.snapshot().percentile(0.5), 0.004, 1e-12);
    EXPECT_NEAR(single.snapshot().percentile(0.99), 0.004, 1e-12);
}

TEST(HistogramPercentiles, SnapshotCountConsistentWithBuckets)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(1e-5 * i);
    HistogramSnapshot snap = h.snapshot();
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t b : snap.buckets)
        bucket_sum += b;
    EXPECT_EQ(snap.count, bucket_sum);
}

TEST(MetricsConcurrency, CountersAndHistogramsExactUnderContention)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("test.events");
    Histogram& hist = registry.histogram("test.latency");
    Gauge& peak = registry.gauge("test.peak");

    const int kThreads = 8;
    const int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                hist.record(1e-4 * (1 + ((t * kPerThread + i) % 100)));
                peak.set_max(static_cast<double>(i % 1000));
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    const std::uint64_t expected =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(counter.value(), expected);
    HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, expected);
    // The CAS-add sum is exact (no lost updates), not just approximate.
    double exact_sum = 0.0;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            exact_sum += 1e-4 * (1 + ((t * kPerThread + i) % 100));
    EXPECT_NEAR(snap.sum, exact_sum, exact_sum * 1e-9);
    EXPECT_DOUBLE_EQ(peak.value(), 999.0);
}

TEST(MetricsRegistry_, SameNameSameObjectDifferentKindThrows)
{
    MetricsRegistry registry;
    Counter& a = registry.counter("dup");
    Counter& b = registry.counter("dup");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(registry.gauge("dup"), std::logic_error);
    EXPECT_THROW(registry.histogram("dup"), std::logic_error);
}

TEST(MetricsRegistry_, SnapshotAndDelta)
{
    MetricsRegistry registry;
    Counter& c = registry.counter("n");
    Histogram& h = registry.histogram("lat");
    registry.gauge("depth").set(3.0);

    c.add(5);
    h.record(0.01);
    MetricsSnapshot before = registry.snapshot();

    c.add(7);
    h.record(0.02);
    h.record(0.03);
    registry.gauge("depth").set(9.0);
    MetricsSnapshot delta = registry.snapshot().delta_since(before);

    EXPECT_DOUBLE_EQ(delta.value("n"), 7.0);         // counter subtracts
    EXPECT_DOUBLE_EQ(delta.value("depth"), 9.0);     // gauge passes through
    const MetricValue* lat = delta.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->histogram.count, 2u);
    EXPECT_NEAR(lat->histogram.sum, 0.05, 1e-12);
    EXPECT_EQ(delta.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(delta.value("missing"), 0.0);

    std::string json = delta.to_json("\"tag\":1");
    EXPECT_NE(json.find("\"tag\":1"), std::string::npos);
    EXPECT_NE(json.find("\"n\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"lat.count\": 2"), std::string::npos);
}

TEST(HistogramMerge, FoldsLifetimeTotalsAcrossResets)
{
    // merge() is the inverse of delta_since: fold the pre-reset snapshot
    // back in and the lifetime totals reappear — the mechanism session
    // spill/reload uses to keep per-session stats monotonic.
    Histogram first;
    first.record(0.001);
    first.record(0.010);
    HistogramSnapshot base = first.snapshot();

    Histogram second;  // the reloaded session's fresh histogram
    second.record(0.100);

    HistogramSnapshot lifetime = base;
    lifetime.merge(second.snapshot());
    EXPECT_EQ(lifetime.count, 3u);
    EXPECT_NEAR(lifetime.sum, 0.111, 1e-9);
    EXPECT_NEAR(lifetime.min, 0.001, 1e-12);
    EXPECT_NEAR(lifetime.max, 0.100, 1e-12);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : lifetime.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, 3u);

    // Merging an empty snapshot is a no-op in both directions.
    HistogramSnapshot empty;
    lifetime.merge(empty);
    EXPECT_EQ(lifetime.count, 3u);
    HistogramSnapshot from_empty;
    from_empty.merge(lifetime);
    EXPECT_EQ(from_empty.count, 3u);
    EXPECT_NEAR(from_empty.min, 0.001, 1e-12);
}

TEST(ScopedTimerTest, RecordsElapsedSecondsIntoHistogram)
{
    Histogram h;
    {
        ScopedTimer timer(h);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        EXPECT_GE(timer.elapsed(), 0.004);
    }
    HistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, 1u);
    EXPECT_GE(snap.sum, 0.004);
    EXPECT_LT(snap.sum, 5.0);  // sanity: seconds, not ns/us units
}

#if !defined(BACO_OBS_TRACE_OFF)

TEST(TraceBuffer, DisabledSpansRecordNothing)
{
    Trace::disable();
    Trace::clear();
    {
        Span span("not.recorded", "test");
    }
    EXPECT_TRUE(Trace::collect().empty());
}

TEST(TraceBuffer, CapturesSpansWithDurations)
{
    Trace::clear();
    Trace::enable();
    {
        Span outer("outer.span", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        Span inner("inner.span", "test");
    }
    Trace::disable();
    std::vector<TraceEvent> events = Trace::collect();
    Trace::clear();
    ASSERT_EQ(events.size(), 2u);
    bool saw_outer = false;
    for (const TraceEvent& e : events) {
        if (std::string(e.name) == "outer.span") {
            saw_outer = true;
            EXPECT_GE(e.duration_us, 2000u);
        }
    }
    EXPECT_TRUE(saw_outer);
}

TEST(TraceBuffer, BoundedRingEvictsOldestKeepsNewest)
{
    Trace::clear();
    Trace::enable();
    // Well past capacity, from one thread: the ring must hold exactly
    // kBufferCapacity events and they must be the most recent ones.
    const std::size_t total = Trace::kBufferCapacity + 500;
    static const char* const kNames[2] = {"old.span", "new.span"};
    for (std::size_t i = 0; i < total; ++i) {
        Span span(i < 500 ? kNames[0] : kNames[1], "test");
    }
    Trace::disable();
    std::vector<TraceEvent> events = Trace::collect();
    Trace::clear();
    ASSERT_EQ(events.size(), Trace::kBufferCapacity);
    // The 500 oldest ("old.span") were all overwritten.
    for (const TraceEvent& e : events)
        EXPECT_STREQ(e.name, "new.span");
    // Oldest-first order within the thread.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].start_us, events[i - 1].start_us);
}

TEST(TraceBuffer, MultiThreadSpansLandInPerThreadBuffers)
{
    Trace::clear();
    Trace::enable();
    const int kThreads = 4;
    const int kPerThread = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                Span span("thread.span", "test");
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    Trace::disable();
    std::vector<TraceEvent> events = Trace::collect();
    Trace::clear();
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    std::vector<std::uint64_t> tids;
    for (const TraceEvent& e : events)
        tids.push_back(e.thread_id);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceBuffer, ChromeExportWritesWellFormedDocument)
{
    Trace::clear();
    Trace::enable();
    {
        Span span("export.span", "test");
    }
    Trace::disable();
    std::string path = ::testing::TempDir() + "baco_trace_test.json";
    ASSERT_TRUE(Trace::export_chrome(path));
    std::ifstream in(path);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"export.span\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    Trace::clear();
}

TEST(TraceBuffer, SpansFromExitedThreadsSurviveCollection)
{
    Trace::clear();
    Trace::enable();
    // Short-lived workers (a ThreadPool sized down, a finished client
    // thread) must not take their ring buffers' spans with them.
    for (int t = 0; t < 3; ++t) {
        std::thread worker([] {
            Span span("short.lived", "test");
        });
        worker.join();
    }
    {
        Span span("long.lived", "test");
    }
    Trace::disable();
    std::vector<TraceEvent> events = Trace::collect();
    Trace::clear();
    int short_lived = 0;
    int long_lived = 0;
    for (const TraceEvent& e : events) {
        if (std::string(e.name) == "short.lived")
            ++short_lived;
        if (std::string(e.name) == "long.lived")
            ++long_lived;
    }
    EXPECT_EQ(short_lived, 3);
    EXPECT_EQ(long_lived, 1);
}

TEST(TraceBuffer, RemoteTracksMergeIntoOneChromeDocument)
{
    Trace::clear();
    Trace::enable();
    Trace::set_run_id("run-merge-test");
    {
        Span span("server.span", "coord");
    }
    auto remote_span = [](const char* name, std::uint64_t ts) {
        RemoteSpan s;
        s.name = name;
        s.category = "worker";
        s.run = "run-merge-test";
        s.thread_id = 1;
        s.start_us = ts;
        s.duration_us = 50;
        return s;
    };
    Trace::add_remote("worker-0", {remote_span("worker.evaluate", 10)});
    Trace::add_remote("worker-1", {remote_span("worker.evaluate", 20),
                                   remote_span("worker.evaluate", 90)});
    // A second shipment appends to the existing track, not a new one.
    Trace::add_remote("worker-0", {remote_span("worker.evaluate", 200)});
    Trace::disable();

    auto tracks = Trace::remote_tracks();
    ASSERT_EQ(tracks.size(), 2u);
    EXPECT_EQ(tracks[0].first, "worker-0");
    EXPECT_EQ(tracks[0].second.size(), 2u);
    EXPECT_EQ(tracks[1].first, "worker-1");
    EXPECT_EQ(tracks[1].second.size(), 2u);

    std::string path = ::testing::TempDir() + "baco_trace_merged.json";
    ASSERT_TRUE(Trace::export_chrome(path));
    std::ifstream in(path);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    Trace::clear();
    // One timeline: the server's own track plus one process per worker,
    // all carrying the run id.
    EXPECT_NE(doc.find("\"server.span\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker-0\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker-1\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker.evaluate\""), std::string::npos);
    EXPECT_NE(doc.find("run-merge-test"), std::string::npos);
}

#endif  // !BACO_OBS_TRACE_OFF

}  // namespace
}  // namespace baco::obs
