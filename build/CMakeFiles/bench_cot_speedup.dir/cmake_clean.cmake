file(REMOVE_RECURSE
  "CMakeFiles/bench_cot_speedup.dir/bench/cot_speedup.cpp.o"
  "CMakeFiles/bench_cot_speedup.dir/bench/cot_speedup.cpp.o.d"
  "bench_cot_speedup"
  "bench_cot_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cot_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
