# Empty dependencies file for bench_cot_speedup.
# This may be replaced when dependencies are built.
