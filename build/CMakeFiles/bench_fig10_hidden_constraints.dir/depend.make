# Empty dependencies file for bench_fig10_hidden_constraints.
# This may be replaced when dependencies are built.
