file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hidden_constraints.dir/bench/fig10_hidden_constraints.cpp.o"
  "CMakeFiles/bench_fig10_hidden_constraints.dir/bench/fig10_hidden_constraints.cpp.o.d"
  "bench_fig10_hidden_constraints"
  "bench_fig10_hidden_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hidden_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
