# Empty dependencies file for bench_table3_spaces.
# This may be replaced when dependencies are built.
