file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_spaces.dir/bench/table3_spaces.cpp.o"
  "CMakeFiles/bench_table3_spaces.dir/bench/table3_spaces.cpp.o.d"
  "bench_table3_spaces"
  "bench_table3_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
