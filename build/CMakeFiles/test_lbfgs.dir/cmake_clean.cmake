file(REMOVE_RECURSE
  "CMakeFiles/test_lbfgs.dir/tests/test_lbfgs.cpp.o"
  "CMakeFiles/test_lbfgs.dir/tests/test_lbfgs.cpp.o.d"
  "test_lbfgs"
  "test_lbfgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbfgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
