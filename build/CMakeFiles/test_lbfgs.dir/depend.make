# Empty dependencies file for test_lbfgs.
# This may be replaced when dependencies are built.
