file(REMOVE_RECURSE
  "CMakeFiles/test_parameters.dir/tests/test_parameters.cpp.o"
  "CMakeFiles/test_parameters.dir/tests/test_parameters.cpp.o.d"
  "test_parameters"
  "test_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
