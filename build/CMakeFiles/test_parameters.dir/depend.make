# Empty dependencies file for test_parameters.
# This may be replaced when dependencies are built.
