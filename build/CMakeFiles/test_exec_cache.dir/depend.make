# Empty dependencies file for test_exec_cache.
# This may be replaced when dependencies are built.
