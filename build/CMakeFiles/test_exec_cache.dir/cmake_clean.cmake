file(REMOVE_RECURSE
  "CMakeFiles/test_exec_cache.dir/tests/test_exec_cache.cpp.o"
  "CMakeFiles/test_exec_cache.dir/tests/test_exec_cache.cpp.o.d"
  "test_exec_cache"
  "test_exec_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
