# Empty dependencies file for bench_micro_gp.
# This may be replaced when dependencies are built.
