file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gp.dir/bench/micro_gp.cpp.o"
  "CMakeFiles/bench_micro_gp.dir/bench/micro_gp.cpp.o.d"
  "bench_micro_gp"
  "bench_micro_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
