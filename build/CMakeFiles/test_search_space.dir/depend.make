# Empty dependencies file for test_search_space.
# This may be replaced when dependencies are built.
