file(REMOVE_RECURSE
  "CMakeFiles/test_search_space.dir/tests/test_search_space.cpp.o"
  "CMakeFiles/test_search_space.dir/tests/test_search_space.cpp.o.d"
  "test_search_space"
  "test_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
