# Empty dependencies file for bench_table10_wall_clock.
# This may be replaced when dependencies are built.
