file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_wall_clock.dir/bench/table10_wall_clock.cpp.o"
  "CMakeFiles/bench_table10_wall_clock.dir/bench/table10_wall_clock.cpp.o.d"
  "bench_table10_wall_clock"
  "bench_table10_wall_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_wall_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
