file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rf.dir/bench/micro_rf.cpp.o"
  "CMakeFiles/bench_micro_rf.dir/bench/micro_rf.cpp.o.d"
  "bench_micro_rf"
  "bench_micro_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
