# Empty dependencies file for bench_micro_rf.
# This may be replaced when dependencies are built.
