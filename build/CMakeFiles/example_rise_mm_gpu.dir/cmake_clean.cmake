file(REMOVE_RECURSE
  "CMakeFiles/example_rise_mm_gpu.dir/examples/rise_mm_gpu.cpp.o"
  "CMakeFiles/example_rise_mm_gpu.dir/examples/rise_mm_gpu.cpp.o.d"
  "example_rise_mm_gpu"
  "example_rise_mm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rise_mm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
