# Empty dependencies file for example_rise_mm_gpu.
# This may be replaced when dependencies are built.
