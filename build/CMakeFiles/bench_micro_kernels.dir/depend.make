# Empty dependencies file for bench_micro_kernels.
# This may be replaced when dependencies are built.
