file(REMOVE_RECURSE
  "CMakeFiles/test_suite_properties.dir/tests/test_suite_properties.cpp.o"
  "CMakeFiles/test_suite_properties.dir/tests/test_suite_properties.cpp.o.d"
  "test_suite_properties"
  "test_suite_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
