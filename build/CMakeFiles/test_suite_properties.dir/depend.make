# Empty dependencies file for test_suite_properties.
# This may be replaced when dependencies are built.
