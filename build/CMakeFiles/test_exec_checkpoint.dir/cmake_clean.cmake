file(REMOVE_RECURSE
  "CMakeFiles/test_exec_checkpoint.dir/tests/test_exec_checkpoint.cpp.o"
  "CMakeFiles/test_exec_checkpoint.dir/tests/test_exec_checkpoint.cpp.o.d"
  "test_exec_checkpoint"
  "test_exec_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
