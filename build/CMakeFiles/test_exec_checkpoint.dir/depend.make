# Empty dependencies file for test_exec_checkpoint.
# This may be replaced when dependencies are built.
