file(REMOVE_RECURSE
  "CMakeFiles/example_hpvm_bfs_dse.dir/examples/hpvm_bfs_dse.cpp.o"
  "CMakeFiles/example_hpvm_bfs_dse.dir/examples/hpvm_bfs_dse.cpp.o.d"
  "example_hpvm_bfs_dse"
  "example_hpvm_bfs_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hpvm_bfs_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
