# Empty dependencies file for example_hpvm_bfs_dse.
# This may be replaced when dependencies are built.
