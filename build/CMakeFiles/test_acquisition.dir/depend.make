# Empty dependencies file for test_acquisition.
# This may be replaced when dependencies are built.
