file(REMOVE_RECURSE
  "CMakeFiles/test_acquisition.dir/tests/test_acquisition.cpp.o"
  "CMakeFiles/test_acquisition.dir/tests/test_acquisition.cpp.o.d"
  "test_acquisition"
  "test_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
