file(REMOVE_RECURSE
  "CMakeFiles/test_exec_engine.dir/tests/test_exec_engine.cpp.o"
  "CMakeFiles/test_exec_engine.dir/tests/test_exec_engine.cpp.o.d"
  "test_exec_engine"
  "test_exec_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
