# Empty dependencies file for test_exec_engine.
# This may be replaced when dependencies are built.
