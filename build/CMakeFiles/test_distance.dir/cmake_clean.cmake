file(REMOVE_RECURSE
  "CMakeFiles/test_distance.dir/tests/test_distance.cpp.o"
  "CMakeFiles/test_distance.dir/tests/test_distance.cpp.o.d"
  "test_distance"
  "test_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
