# Empty dependencies file for test_distance.
# This may be replaced when dependencies are built.
