file(REMOVE_RECURSE
  "CMakeFiles/test_taco_model.dir/tests/test_taco_model.cpp.o"
  "CMakeFiles/test_taco_model.dir/tests/test_taco_model.cpp.o.d"
  "test_taco_model"
  "test_taco_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taco_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
