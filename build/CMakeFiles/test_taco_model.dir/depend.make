# Empty dependencies file for test_taco_model.
# This may be replaced when dependencies are built.
