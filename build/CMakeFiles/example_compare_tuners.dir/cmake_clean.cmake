file(REMOVE_RECURSE
  "CMakeFiles/example_compare_tuners.dir/examples/compare_tuners.cpp.o"
  "CMakeFiles/example_compare_tuners.dir/examples/compare_tuners.cpp.o.d"
  "example_compare_tuners"
  "example_compare_tuners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_tuners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
