# Empty dependencies file for example_compare_tuners.
# This may be replaced when dependencies are built.
