file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bo_variants.dir/bench/fig8_bo_variants.cpp.o"
  "CMakeFiles/bench_fig8_bo_variants.dir/bench/fig8_bo_variants.cpp.o.d"
  "bench_fig8_bo_variants"
  "bench_fig8_bo_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bo_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
