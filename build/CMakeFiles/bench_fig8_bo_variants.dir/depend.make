# Empty dependencies file for bench_fig8_bo_variants.
# This may be replaced when dependencies are built.
