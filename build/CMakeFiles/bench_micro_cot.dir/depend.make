# Empty dependencies file for bench_micro_cot.
# This may be replaced when dependencies are built.
