file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cot.dir/bench/micro_cot.cpp.o"
  "CMakeFiles/bench_micro_cot.dir/bench/micro_cot.cpp.o.d"
  "bench_micro_cot"
  "bench_micro_cot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
