# Empty dependencies file for test_taco_kernels.
# This may be replaced when dependencies are built.
