file(REMOVE_RECURSE
  "CMakeFiles/test_taco_kernels.dir/tests/test_taco_kernels.cpp.o"
  "CMakeFiles/test_taco_kernels.dir/tests/test_taco_kernels.cpp.o.d"
  "test_taco_kernels"
  "test_taco_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taco_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
