file(REMOVE_RECURSE
  "CMakeFiles/test_gp.dir/tests/test_gp.cpp.o"
  "CMakeFiles/test_gp.dir/tests/test_gp.cpp.o.d"
  "test_gp"
  "test_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
