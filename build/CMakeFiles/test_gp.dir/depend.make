# Empty dependencies file for test_gp.
# This may be replaced when dependencies are built.
