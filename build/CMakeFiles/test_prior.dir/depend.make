# Empty dependencies file for test_prior.
# This may be replaced when dependencies are built.
