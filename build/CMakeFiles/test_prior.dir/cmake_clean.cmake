file(REMOVE_RECURSE
  "CMakeFiles/test_prior.dir/tests/test_prior.cpp.o"
  "CMakeFiles/test_prior.dir/tests/test_prior.cpp.o.d"
  "test_prior"
  "test_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
