# Empty dependencies file for bench_fig5_tables678_budgets.
# This may be replaced when dependencies are built.
