file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tables678_budgets.dir/bench/fig5_tables678_budgets.cpp.o"
  "CMakeFiles/bench_fig5_tables678_budgets.dir/bench/fig5_tables678_budgets.cpp.o.d"
  "bench_fig5_tables678_budgets"
  "bench_fig5_tables678_budgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tables678_budgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
