# Empty dependencies file for baco.
# This may be replaced when dependencies are built.
