file(REMOVE_RECURSE
  "libbaco.a"
)
