
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/opentuner_like.cpp" "CMakeFiles/baco.dir/src/baselines/opentuner_like.cpp.o" "gcc" "CMakeFiles/baco.dir/src/baselines/opentuner_like.cpp.o.d"
  "/root/repo/src/baselines/random_search.cpp" "CMakeFiles/baco.dir/src/baselines/random_search.cpp.o" "gcc" "CMakeFiles/baco.dir/src/baselines/random_search.cpp.o.d"
  "/root/repo/src/baselines/ytopt_like.cpp" "CMakeFiles/baco.dir/src/baselines/ytopt_like.cpp.o" "gcc" "CMakeFiles/baco.dir/src/baselines/ytopt_like.cpp.o.d"
  "/root/repo/src/core/acquisition.cpp" "CMakeFiles/baco.dir/src/core/acquisition.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/acquisition.cpp.o.d"
  "/root/repo/src/core/chain_of_trees.cpp" "CMakeFiles/baco.dir/src/core/chain_of_trees.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/chain_of_trees.cpp.o.d"
  "/root/repo/src/core/constraint.cpp" "CMakeFiles/baco.dir/src/core/constraint.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/constraint.cpp.o.d"
  "/root/repo/src/core/distance.cpp" "CMakeFiles/baco.dir/src/core/distance.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/distance.cpp.o.d"
  "/root/repo/src/core/doe.cpp" "CMakeFiles/baco.dir/src/core/doe.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/doe.cpp.o.d"
  "/root/repo/src/core/expression.cpp" "CMakeFiles/baco.dir/src/core/expression.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/expression.cpp.o.d"
  "/root/repo/src/core/feasibility_model.cpp" "CMakeFiles/baco.dir/src/core/feasibility_model.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/feasibility_model.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "CMakeFiles/baco.dir/src/core/local_search.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/local_search.cpp.o.d"
  "/root/repo/src/core/parameter.cpp" "CMakeFiles/baco.dir/src/core/parameter.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/parameter.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "CMakeFiles/baco.dir/src/core/search_space.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/search_space.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "CMakeFiles/baco.dir/src/core/tuner.cpp.o" "gcc" "CMakeFiles/baco.dir/src/core/tuner.cpp.o.d"
  "/root/repo/src/exec/ask_tell.cpp" "CMakeFiles/baco.dir/src/exec/ask_tell.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/ask_tell.cpp.o.d"
  "/root/repo/src/exec/checkpoint.cpp" "CMakeFiles/baco.dir/src/exec/checkpoint.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/checkpoint.cpp.o.d"
  "/root/repo/src/exec/eval_cache.cpp" "CMakeFiles/baco.dir/src/exec/eval_cache.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/eval_cache.cpp.o.d"
  "/root/repo/src/exec/eval_engine.cpp" "CMakeFiles/baco.dir/src/exec/eval_engine.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/eval_engine.cpp.o.d"
  "/root/repo/src/exec/jsonl.cpp" "CMakeFiles/baco.dir/src/exec/jsonl.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/jsonl.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "CMakeFiles/baco.dir/src/exec/thread_pool.cpp.o" "gcc" "CMakeFiles/baco.dir/src/exec/thread_pool.cpp.o.d"
  "/root/repo/src/gp/gp_model.cpp" "CMakeFiles/baco.dir/src/gp/gp_model.cpp.o" "gcc" "CMakeFiles/baco.dir/src/gp/gp_model.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "CMakeFiles/baco.dir/src/gp/kernel.cpp.o" "gcc" "CMakeFiles/baco.dir/src/gp/kernel.cpp.o.d"
  "/root/repo/src/gp/lbfgs.cpp" "CMakeFiles/baco.dir/src/gp/lbfgs.cpp.o" "gcc" "CMakeFiles/baco.dir/src/gp/lbfgs.cpp.o.d"
  "/root/repo/src/hpvm/benchmarks.cpp" "CMakeFiles/baco.dir/src/hpvm/benchmarks.cpp.o" "gcc" "CMakeFiles/baco.dir/src/hpvm/benchmarks.cpp.o.d"
  "/root/repo/src/hpvm/fpga_model.cpp" "CMakeFiles/baco.dir/src/hpvm/fpga_model.cpp.o" "gcc" "CMakeFiles/baco.dir/src/hpvm/fpga_model.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "CMakeFiles/baco.dir/src/linalg/cholesky.cpp.o" "gcc" "CMakeFiles/baco.dir/src/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "CMakeFiles/baco.dir/src/linalg/matrix.cpp.o" "gcc" "CMakeFiles/baco.dir/src/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/rng.cpp" "CMakeFiles/baco.dir/src/linalg/rng.cpp.o" "gcc" "CMakeFiles/baco.dir/src/linalg/rng.cpp.o.d"
  "/root/repo/src/linalg/stats.cpp" "CMakeFiles/baco.dir/src/linalg/stats.cpp.o" "gcc" "CMakeFiles/baco.dir/src/linalg/stats.cpp.o.d"
  "/root/repo/src/rf/decision_tree.cpp" "CMakeFiles/baco.dir/src/rf/decision_tree.cpp.o" "gcc" "CMakeFiles/baco.dir/src/rf/decision_tree.cpp.o.d"
  "/root/repo/src/rf/random_forest.cpp" "CMakeFiles/baco.dir/src/rf/random_forest.cpp.o" "gcc" "CMakeFiles/baco.dir/src/rf/random_forest.cpp.o.d"
  "/root/repo/src/rise/benchmarks.cpp" "CMakeFiles/baco.dir/src/rise/benchmarks.cpp.o" "gcc" "CMakeFiles/baco.dir/src/rise/benchmarks.cpp.o.d"
  "/root/repo/src/rise/gpu_model.cpp" "CMakeFiles/baco.dir/src/rise/gpu_model.cpp.o" "gcc" "CMakeFiles/baco.dir/src/rise/gpu_model.cpp.o.d"
  "/root/repo/src/suite/registry.cpp" "CMakeFiles/baco.dir/src/suite/registry.cpp.o" "gcc" "CMakeFiles/baco.dir/src/suite/registry.cpp.o.d"
  "/root/repo/src/suite/report.cpp" "CMakeFiles/baco.dir/src/suite/report.cpp.o" "gcc" "CMakeFiles/baco.dir/src/suite/report.cpp.o.d"
  "/root/repo/src/suite/runner.cpp" "CMakeFiles/baco.dir/src/suite/runner.cpp.o" "gcc" "CMakeFiles/baco.dir/src/suite/runner.cpp.o.d"
  "/root/repo/src/taco/benchmarks.cpp" "CMakeFiles/baco.dir/src/taco/benchmarks.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/benchmarks.cpp.o.d"
  "/root/repo/src/taco/cost_model.cpp" "CMakeFiles/baco.dir/src/taco/cost_model.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/cost_model.cpp.o.d"
  "/root/repo/src/taco/csf.cpp" "CMakeFiles/baco.dir/src/taco/csf.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/csf.cpp.o.d"
  "/root/repo/src/taco/generators.cpp" "CMakeFiles/baco.dir/src/taco/generators.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/generators.cpp.o.d"
  "/root/repo/src/taco/kernels.cpp" "CMakeFiles/baco.dir/src/taco/kernels.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/kernels.cpp.o.d"
  "/root/repo/src/taco/tensor.cpp" "CMakeFiles/baco.dir/src/taco/tensor.cpp.o" "gcc" "CMakeFiles/baco.dir/src/taco/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
