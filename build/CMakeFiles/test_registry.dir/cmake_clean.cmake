file(REMOVE_RECURSE
  "CMakeFiles/test_registry.dir/tests/test_registry.cpp.o"
  "CMakeFiles/test_registry.dir/tests/test_registry.cpp.o.d"
  "test_registry"
  "test_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
