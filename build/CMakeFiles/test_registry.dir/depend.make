# Empty dependencies file for test_registry.
# This may be replaced when dependencies are built.
