# Empty dependencies file for bench_prior_extension.
# This may be replaced when dependencies are built.
