file(REMOVE_RECURSE
  "CMakeFiles/bench_prior_extension.dir/bench/prior_extension.cpp.o"
  "CMakeFiles/bench_prior_extension.dir/bench/prior_extension.cpp.o.d"
  "bench_prior_extension"
  "bench_prior_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prior_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
