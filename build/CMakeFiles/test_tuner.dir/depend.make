# Empty dependencies file for test_tuner.
# This may be replaced when dependencies are built.
