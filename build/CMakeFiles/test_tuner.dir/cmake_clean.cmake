file(REMOVE_RECURSE
  "CMakeFiles/test_tuner.dir/tests/test_tuner.cpp.o"
  "CMakeFiles/test_tuner.dir/tests/test_tuner.cpp.o.d"
  "test_tuner"
  "test_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
