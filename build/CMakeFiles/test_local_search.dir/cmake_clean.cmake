file(REMOVE_RECURSE
  "CMakeFiles/test_local_search.dir/tests/test_local_search.cpp.o"
  "CMakeFiles/test_local_search.dir/tests/test_local_search.cpp.o.d"
  "test_local_search"
  "test_local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
