file(REMOVE_RECURSE
  "CMakeFiles/example_taco_spmm_autotune.dir/examples/taco_spmm_autotune.cpp.o"
  "CMakeFiles/example_taco_spmm_autotune.dir/examples/taco_spmm_autotune.cpp.o.d"
  "example_taco_spmm_autotune"
  "example_taco_spmm_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_taco_spmm_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
