# Empty dependencies file for example_taco_spmm_autotune.
# This may be replaced when dependencies are built.
