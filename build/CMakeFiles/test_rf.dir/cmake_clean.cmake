file(REMOVE_RECURSE
  "CMakeFiles/test_rf.dir/tests/test_rf.cpp.o"
  "CMakeFiles/test_rf.dir/tests/test_rf.cpp.o.d"
  "test_rf"
  "test_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
