# Empty dependencies file for test_rf.
# This may be replaced when dependencies are built.
