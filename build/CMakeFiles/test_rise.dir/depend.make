# Empty dependencies file for test_rise.
# This may be replaced when dependencies are built.
