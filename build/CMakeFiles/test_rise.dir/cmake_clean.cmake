file(REMOVE_RECURSE
  "CMakeFiles/test_rise.dir/tests/test_rise.cpp.o"
  "CMakeFiles/test_rise.dir/tests/test_rise.cpp.o.d"
  "test_rise"
  "test_rise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
