# Empty dependencies file for test_expression.
# This may be replaced when dependencies are built.
