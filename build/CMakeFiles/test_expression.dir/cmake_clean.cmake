file(REMOVE_RECURSE
  "CMakeFiles/test_expression.dir/tests/test_expression.cpp.o"
  "CMakeFiles/test_expression.dir/tests/test_expression.cpp.o.d"
  "test_expression"
  "test_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
