file(REMOVE_RECURSE
  "CMakeFiles/test_csf.dir/tests/test_csf.cpp.o"
  "CMakeFiles/test_csf.dir/tests/test_csf.cpp.o.d"
  "test_csf"
  "test_csf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
