# Empty dependencies file for test_csf.
# This may be replaced when dependencies are built.
