file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_table9_evolution.dir/bench/fig6_table9_evolution.cpp.o"
  "CMakeFiles/bench_fig6_table9_evolution.dir/bench/fig6_table9_evolution.cpp.o.d"
  "bench_fig6_table9_evolution"
  "bench_fig6_table9_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_table9_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
