# Empty dependencies file for bench_fig6_table9_evolution.
# This may be replaced when dependencies are built.
