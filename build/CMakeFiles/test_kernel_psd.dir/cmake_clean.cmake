file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_psd.dir/tests/test_kernel_psd.cpp.o"
  "CMakeFiles/test_kernel_psd.dir/tests/test_kernel_psd.cpp.o.d"
  "test_kernel_psd"
  "test_kernel_psd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_psd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
