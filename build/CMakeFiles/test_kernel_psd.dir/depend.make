# Empty dependencies file for test_kernel_psd.
# This may be replaced when dependencies are built.
