# Empty dependencies file for test_hpvm.
# This may be replaced when dependencies are built.
