file(REMOVE_RECURSE
  "CMakeFiles/test_hpvm.dir/tests/test_hpvm.cpp.o"
  "CMakeFiles/test_hpvm.dir/tests/test_hpvm.cpp.o.d"
  "test_hpvm"
  "test_hpvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
