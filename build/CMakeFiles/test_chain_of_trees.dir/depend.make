# Empty dependencies file for test_chain_of_trees.
# This may be replaced when dependencies are built.
