file(REMOVE_RECURSE
  "CMakeFiles/test_chain_of_trees.dir/tests/test_chain_of_trees.cpp.o"
  "CMakeFiles/test_chain_of_trees.dir/tests/test_chain_of_trees.cpp.o.d"
  "test_chain_of_trees"
  "test_chain_of_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_of_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
