file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig11_all_curves.dir/bench/fig7_fig11_all_curves.cpp.o"
  "CMakeFiles/bench_fig7_fig11_all_curves.dir/bench/fig7_fig11_all_curves.cpp.o.d"
  "bench_fig7_fig11_all_curves"
  "bench_fig7_fig11_all_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig11_all_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
