# Empty dependencies file for bench_fig7_fig11_all_curves.
# This may be replaced when dependencies are built.
