// Regenerates Fig. 7 and Fig. 11: evolution of the average best runtime for
// every benchmark and method, plus the iteration at which each method first
// beats the expert configuration (the figures' star markers).
//
// Usage: fig7_fig11_all_curves [--reps N] [--seed S]

#include <iostream>
#include <map>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/2);
    const std::vector<Method>& methods = headline_methods();

    print_banner(std::cout,
                 "Fig. 7 + Fig. 11: evolution of average best runtime "
                 "[ms] for all benchmarks (" +
                     std::to_string(args.reps) + " repetitions)");

    for (const Benchmark& b : all_benchmarks()) {
        std::cout << "\n--- " << b.framework << " " << b.name
                  << " (budget " << b.full_budget
                  << ", DoE " << b.doe_samples << ")"
                  << "  expert=" << fmt(b.reference_cost, 3) << " ms"
                  << "  default="
                  << (b.default_config
                          ? fmt(b.true_cost(*b.default_config), 3)
                          : std::string("-"))
                  << " ms ---\n";

        std::map<Method, std::vector<double>> curves;
        for (Method m : methods) {
            curves[m] = run_repetitions(b, m, b.full_budget, args.reps,
                                        args.seed)
                            .mean_trajectory();
        }

        std::vector<std::string> headers{"evals"};
        for (Method m : methods)
            headers.push_back(method_name(m));
        TextTable table(headers);
        int step = std::max(1, b.full_budget / 12);
        for (int e = step; e <= b.full_budget; e += step) {
            std::vector<std::string> row{std::to_string(e)};
            for (Method m : methods) {
                const auto& c = curves[m];
                std::size_t at = std::min<std::size_t>(
                    c.size() - 1, static_cast<std::size_t>(e - 1));
                row.push_back(fmt(c[at], 3));
            }
            table.add_row(row);
        }
        table.print(std::cout);

        // Star markers: first iteration beating the expert reference.
        std::cout << "beats-expert at eval:";
        for (Method m : methods) {
            int at = evals_to_reach(curves[m], b.reference_cost);
            std::cout << "  " << method_name(m) << "="
                      << (at < 0 ? std::string("-") : std::to_string(at));
        }
        std::cout << "\n";
    }
    return 0;
}
