// Regenerates Fig. 9: ablation of BaCO's design choices on TACO SpMM
// (filter3D, email-Enron, amazon0312) — permutation semimetric choice
// (Spearman default vs Kendall vs Hamming vs naive-categorical), input/
// output log transforms, and lengthscale priors.
//
// Usage: fig9_ablation [--reps N] [--seed S]

#include <iostream>

#include "harness_util.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"
#include "taco/benchmarks.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;
using baco::bench::safe_geomean;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const int budget = 60;
    const char* matrices[] = {"filter3D", "email-Enron", "amazon0312"};

    print_banner(std::cout,
                 "Fig. 9: ablation of BaCO design choices on TACO SpMM "
                 "(geomean perf. relative to expert)");

    struct Variant {
      const char* name;
      SpaceVariant space;
      bool log_objective;
      bool use_priors;
    };
    SpaceVariant spearman, kendall, hamming, naive, no_logs;
    kendall.permutation_metric = PermutationMetric::kKendall;
    hamming.permutation_metric = PermutationMetric::kHamming;
    naive.permutation_metric = PermutationMetric::kNaive;
    no_logs.log_transforms = false;

    const Variant variants[] = {
        {"BaCO (Spearman)", spearman, true, true},
        {"Kendall", kendall, true, true},
        {"Hamming", hamming, true, true},
        {"Naive (categorical)", naive, true, true},
        {"No transformations", no_logs, false, true},
        {"No priors", spearman, true, false},
    };

    TextTable table({"Variant", "20 evals", "40 evals", "60 evals"});
    for (const Variant& v : variants) {
        std::vector<double> at[3];
        for (const char* matrix : matrices) {
            Benchmark b =
                taco::make_taco_benchmark(taco::TacoKernel::kSpMM, matrix);
            std::vector<std::vector<double>> trajs;
            for (int r = 0; r < args.reps; ++r) {
                TunerOptions opt = TunerOptions::baco_defaults();
                opt.budget = budget;
                opt.doe_samples = b.doe_samples;
                opt.seed = args.seed + static_cast<std::uint64_t>(r);
                opt.log_objective = v.log_objective;
                opt.gp.use_priors = v.use_priors;
                trajs.push_back(
                    run_baco_custom(b, opt, v.space).best_trajectory());
            }
            for (int t = 0; t < 3; ++t) {
                int evals = 20 * (t + 1);
                std::vector<double> rels;
                for (const auto& traj : trajs) {
                    std::size_t i = std::min<std::size_t>(
                        traj.size() - 1,
                        static_cast<std::size_t>(evals - 1));
                    rels.push_back(std::isfinite(traj[i])
                                       ? b.reference_cost / traj[i]
                                       : 0.0);
                }
                at[t].push_back(mean(rels));
            }
        }
        table.add_row({v.name, fmt(safe_geomean(at[0]), 2) + "x",
                       fmt(safe_geomean(at[1]), 2) + "x",
                       fmt(safe_geomean(at[2]), 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: Spearman best (especially early); removing "
                 "log transforms hurts at all budgets; priors matter most "
                 "early on.\n";
    return 0;
}
