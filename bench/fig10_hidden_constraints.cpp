// Regenerates Fig. 10: impact of the hidden-constraint feasibility
// predictor and of the minimum feasibility limit eps_f on the MM_GPU and
// Scal_GPU benchmarks (geomean of performance relative to expert after
// 20/40/60 evaluations).
//
// Usage: fig10_hidden_constraints [--reps N] [--seed S]

#include <iostream>

#include "harness_util.hpp"
#include "rise/benchmarks.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;
using baco::bench::safe_geomean;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const int budget = 60;
    const char* benchmarks[] = {"MM_GPU", "Scal_GPU"};

    print_banner(std::cout,
                 "Fig. 10: impact of hidden-constraint handling on MM_GPU "
                 "and Scal_GPU (geomean perf. relative to expert)");

    struct Variant {
      const char* name;
      bool feasibility_model;
      bool feasibility_limit;
    };
    const Variant variants[] = {
        {"BaCO", true, true},
        {"No hidden constraints model", false, true},
        {"No feasibility limit", true, false},
    };

    TextTable table({"Variant", "20 evals", "40 evals", "60 evals"});
    for (const Variant& v : variants) {
        std::vector<double> at[3];
        for (const char* name : benchmarks) {
            Benchmark b = rise::make_rise_benchmark(name);
            std::vector<std::vector<double>> trajs;
            for (int r = 0; r < args.reps; ++r) {
                TunerOptions opt = TunerOptions::baco_defaults();
                opt.budget = budget;
                opt.doe_samples = b.doe_samples;
                opt.seed = args.seed + static_cast<std::uint64_t>(r);
                opt.use_feasibility_model = v.feasibility_model;
                opt.use_feasibility_limit = v.feasibility_limit;
                trajs.push_back(
                    run_baco_custom(b, opt, SpaceVariant{}).best_trajectory());
            }
            for (int t = 0; t < 3; ++t) {
                int evals = 20 * (t + 1);
                std::vector<double> rels;
                for (const auto& traj : trajs) {
                    std::size_t i = std::min<std::size_t>(
                        traj.size() - 1,
                        static_cast<std::size_t>(evals - 1));
                    rels.push_back(std::isfinite(traj[i])
                                       ? b.reference_cost / traj[i]
                                       : 0.0);
                }
                at[t].push_back(mean(rels));
            }
        }
        table.add_row({v.name, fmt(safe_geomean(at[0]), 2) + "x",
                       fmt(safe_geomean(at[1]), 2) + "x",
                       fmt(safe_geomean(at[2]), 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: the feasibility predictor helps, "
                 "especially later; removing the minimum feasibility limit "
                 "destabilizes the model interaction.\n";
    return 0;
}
