// Suggest-latency harness: how long one suggest() takes as the history
// grows, per method. Model-based tuners refit on every observe, so
// suggest cost climbs with history length — this harness measures the
// p50/p99 suggest latency at several history levels and reports the
// per-phase breakdown (model fit, acquisition/local search) from the
// obs metrics registry, pinning that the tuner instrumentation actually
// fires.
//
// The gated quantity is the dimensionless p50 GROWTH RATIO between the
// largest and smallest history level — latency scaling, which transfers
// across machines where absolute milliseconds do not. Absolute rows are
// reported for the trajectory but not gated.
//
// Usage: suggest_latency [--reps N] [--seed S] [--json [PATH]]
//                        [--trace [PATH]]
//
// --json writes BENCH_suggest_latency.json (or PATH): one row per
// (method, history level) plus one gated growth row per model-based
// method — the artifact scripts/bench_diff.py compares against
// bench/baselines/. --trace additionally records obs tracing spans over
// the whole run and exports Chrome trace_event JSON (default
// trace_suggest_latency.json; load in chrome://tracing).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/tuner.hpp"
#include "harness_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;
using baco::bench::JsonWriter;

namespace {

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile_i", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_ordinal("tile_j", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_categorical("layout", {"row", "col", "blocked"});
    s.add_ordinal("unroll", {1, 2, 4, 8, 16}, true);
    return s;
}

/** Cheap analytic objective: the harness times suggest(), not this. */
EvalResult
fast_eval(const Configuration& c, RngEngine& rng)
{
    double ti = static_cast<double>(as_int(c[0]));
    double tj = static_cast<double>(as_int(c[1]));
    double layout = static_cast<double>(as_int(c[2]));
    double unroll = static_cast<double>(as_int(c[3]));
    double v = 1.0 + std::pow(std::log2(ti / 32.0), 2) +
               std::pow(std::log2(tj / 16.0), 2) + 0.7 * layout +
               0.3 * std::pow(std::log2(unroll / 4.0), 2);
    return EvalResult{v * rng.lognormal_factor(0.03), true};
}

/** Exact quantile of a sample set (sorted copy, linear interpolation). */
double
exact_percentile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double rank = q * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

/** One measured (method, history level) cell. */
struct Cell {
  int history = 0;       ///< history size when the window started
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double fit_ms = 0.0;   ///< mean model-fit time per suggest (registry)
  double acq_ms = 0.0;   ///< mean acquisition/local-search time
  std::uint64_t obs_suggests = 0;  ///< registry-counted suggests
};

/**
 * Advance the tuner to `level` observed evaluations (batched observes
 * keep refit count low), then time `samples` suggest(1)+observe rounds.
 * History grows by one per sample, so the cell covers
 * [level, level+samples) — nominal level is what the row reports.
 */
Cell
measure_level(AskTellTuner& tuner, int level, int samples,
              std::uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    while (static_cast<int>(tuner.history().size()) < level) {
        int want = std::min(8, level - static_cast<int>(
                                          tuner.history().size()));
        std::vector<Configuration> cfgs = tuner.suggest(want);
        if (cfgs.empty())
            break;
        std::vector<EvalResult> results;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            RngEngine rng =
                eval_rng_for(seed, tuner.history().size() + i);
            results.push_back(fast_eval(cfgs[i], rng));
        }
        tuner.observe(cfgs, results);
    }

    Cell cell;
    cell.history = static_cast<int>(tuner.history().size());
    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    std::vector<double> latencies_ms;
    for (int s = 0; s < samples; ++s) {
        auto t0 = Clock::now();
        std::vector<Configuration> cfgs = tuner.suggest(1);
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
        if (cfgs.empty())
            break;
        latencies_ms.push_back(ms);
        RngEngine rng = eval_rng_for(seed, tuner.history().size());
        tuner.observe({cfgs[0]}, {fast_eval(cfgs[0], rng)});
    }
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);

    cell.p50_ms = exact_percentile(latencies_ms, 0.50);
    cell.p99_ms = exact_percentile(latencies_ms, 0.99);
    double sum = 0.0;
    for (double ms : latencies_ms)
        sum += ms;
    cell.mean_ms = latencies_ms.empty()
                       ? 0.0
                       : sum / static_cast<double>(latencies_ms.size());
    double n = std::max<double>(1.0, static_cast<double>(
                                         latencies_ms.size()));
    cell.fit_ms = 1e3 * delta.value("tuner.model_fit_seconds") / n;
    cell.acq_ms = 1e3 * delta.value("tuner.acquisition_seconds") / n;
    if (const obs::MetricValue* m = delta.find("tuner.suggest_seconds"))
        cell.obs_suggests = m->histogram.count;
    return cell;
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3,
                                          "BENCH_suggest_latency.json");
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                trace_path = argv[++i];
            else
                trace_path = "trace_suggest_latency.json";
        }
    }
    if (!trace_path.empty())
        obs::Trace::enable();

    const std::vector<int> levels = {8, 32, 96};
    const int samples = std::max(4, 2 * args.reps);
    const int budget = levels.back() + samples + 16;
    const std::vector<Method> methods = {Method::kUniform, Method::kBaco};
    SearchSpace space = make_space();

    print_banner(std::cout,
                 "Suggest latency vs history length (" +
                     std::to_string(samples) + " samples/level, budget " +
                     std::to_string(budget) + ")");

    TextTable table({"Method", "history", "p50 [ms]", "p99 [ms]",
                     "mean [ms]", "fit [ms]", "acq [ms]"});
    std::vector<std::string> json_rows;
    bool obs_ok = true;

    for (Method m : methods) {
        std::unique_ptr<AskTellTuner> tuner =
            make_ask_tell(space, m, budget, /*doe_samples=*/8, args.seed);
        std::vector<Cell> cells;
        for (int level : levels) {
            Cell cell = measure_level(*tuner, level, samples, args.seed);
            cells.push_back(cell);
            table.add_row({method_name(m), std::to_string(cell.history),
                           fmt(cell.p50_ms, 3), fmt(cell.p99_ms, 3),
                           fmt(cell.mean_ms, 3), fmt(cell.fit_ms, 3),
                           fmt(cell.acq_ms, 3)});
            JsonWriter row;
            row.field("key", method_name(m) + "/h" +
                                 std::to_string(level))
                .field("method", method_name(m))
                .field("history", level)
                .field("gated", false)
                .field("p50_ms", cell.p50_ms)
                .field("p99_ms", cell.p99_ms)
                .field("mean_ms", cell.mean_ms)
                .field("fit_ms", cell.fit_ms)
                .field("acq_ms", cell.acq_ms)
                .field("obs_suggests", cell.obs_suggests);
            json_rows.push_back(row.str());
            // The registry must have counted every timed suggest (the
            // advance phase adds more): the instrumentation pin.
            if (cell.obs_suggests <
                static_cast<std::uint64_t>(samples))
                obs_ok = false;
        }
        // The dimensionless growth row — gated for the model-based
        // method only (Uniform suggests in microseconds; its ratio is
        // timer noise). Anchored on the last two levels, not the
        // first: a 1-2 ms h8 denominator swings the ratio by tens of
        // percent on scheduler noise alone, while both upper levels
        // are stable to a few percent run-to-run. lower_better:
        // scaling got worse if it grows.
        const Cell& anchor = cells[cells.size() - 2];
        double p50_growth =
            cells.back().p50_ms / std::max(anchor.p50_ms, 1e-6);
        std::cout << method_name(m) << ": p50 growth h"
                  << levels.back() << "/h" << anchor.history << " = "
                  << fmt(p50_growth, 2) << "x\n";
        JsonWriter growth;
        growth.field("key", "growth/" + method_name(m))
            .field("method", method_name(m))
            .field("gated", m == Method::kBaco)
            .field("gate_metric", std::string("p50_growth"))
            .field("gate_direction", std::string("lower_better"))
            .field("tolerance", 0.35)
            .field("p50_growth", p50_growth);
        json_rows.push_back(growth.str());
    }

    // ---- Incremental vs scratch refits at the deepest level. ----
    // The same BaCO tuner with the incremental GP path on (default) and
    // off (the legacy refit-every-propose escape hatch), both advanced
    // to the deepest history the same way. The gated quantity is the
    // dimensionless p50 ratio scratch/incremental — the headline win of
    // the incremental Cholesky path, measured in-run so it transfers
    // across machines.
    bool incremental_ok = true;
    {
        TunerOptions topt;
        topt.budget = budget;
        topt.doe_samples = 8;
        topt.seed = args.seed;
        topt.incremental_fit = true;
        Tuner inc(space, topt);
        Cell c_inc = measure_level(inc, levels.back(), samples, args.seed);
        topt.incremental_fit = false;
        Tuner scr(space, topt);
        Cell c_scr = measure_level(scr, levels.back(), samples, args.seed);
        table.add_row({"BaCO/incremental", std::to_string(c_inc.history),
                       fmt(c_inc.p50_ms, 3), fmt(c_inc.p99_ms, 3),
                       fmt(c_inc.mean_ms, 3), fmt(c_inc.fit_ms, 3),
                       fmt(c_inc.acq_ms, 3)});
        table.add_row({"BaCO/scratch", std::to_string(c_scr.history),
                       fmt(c_scr.p50_ms, 3), fmt(c_scr.p99_ms, 3),
                       fmt(c_scr.mean_ms, 3), fmt(c_scr.fit_ms, 3),
                       fmt(c_scr.acq_ms, 3)});
        double p50_speedup =
            c_scr.p50_ms / std::max(c_inc.p50_ms, 1e-6);
        const double target = 5.0;
        incremental_ok = p50_speedup >= target;
        std::cout << "BaCO incremental p50 speedup at h" << levels.back()
                  << " (scratch/incremental): " << fmt(p50_speedup, 2)
                  << "x (target >= " << fmt(target, 1) << "x) — "
                  << (incremental_ok ? "ok" : "FAILED") << "\n";
        JsonWriter row;
        row.field("key", std::string("incremental/BaCO"))
            .field("method", std::string("BaCO"))
            .field("history", levels.back())
            .field("gated", true)
            .field("gate_metric", std::string("p50_speedup"))
            .field("gate_direction", std::string("higher_better"))
            .field("tolerance", 0.35)
            .field("p50_incremental_ms", c_inc.p50_ms)
            .field("p50_scratch_ms", c_scr.p50_ms)
            .field("p50_speedup", p50_speedup);
        json_rows.push_back(row.str());
    }

    table.print(std::cout);
    std::cout << "obs instrumentation counted every timed suggest: "
              << (obs_ok ? "ok" : "FAILED") << "\n";

    if (!args.json_path.empty()) {
        JsonWriter json;
        json.field("bench", std::string("suggest_latency"))
            .field("budget", budget)
            .field("reps", args.reps)
            .field("samples_per_level", samples)
            .field("obs_ok", obs_ok)
            .field("incremental_ok", incremental_ok)
            .raw_field("rows", JsonWriter::array(json_rows));
        if (!baco::bench::write_json(args.json_path, json)) {
            std::cout << "cannot write " << args.json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << args.json_path << "\n";
    }
    if (!trace_path.empty()) {
        obs::Trace::disable();
        if (obs::Trace::export_chrome(trace_path))
            std::cout << "wrote " << trace_path << "\n";
        else
            std::cout << "cannot write " << trace_path << "\n";
    }
    return obs_ok && incremental_ok ? 0 : 1;
}
