// Regenerates Table 10: average wall-clock time of each autotuner on the
// TACO SpMM and SDDMM benchmarks, split into search overhead (measured) and
// modelled kernel evaluation time (the sum of simulated runtimes, which is
// what dominates on the paper's real testbed).
//
// Usage: table10_wall_clock [--reps N] [--seed S]

#include <iostream>
#include <map>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const std::vector<Method>& methods = headline_methods();

    print_banner(std::cout,
                 "Table 10: average wall-clock seconds per autotuning run "
                 "(TACO SpMM and SDDMM)");

    struct Group {
      const char* kernel;
      std::vector<const char*> names;
    };
    const Group groups[] = {
        {"SpMM", {"SpMM/scircuit", "SpMM/cage12", "SpMM/laminar_duct3D"}},
        {"SDDMM",
         {"SDDMM/email-Enron", "SDDMM/ACTIVSg10K", "SDDMM/Goodwin_040"}},
    };

    TextTable table({"Kernel", "Method", "search overhead [s]",
                     "modelled kernel time [s]", "total [s]"});
    for (const Group& g : groups) {
        for (Method m : methods) {
            double overhead = 0.0, modelled = 0.0;
            int n = 0;
            for (const char* name : g.names) {
                const Benchmark& b = find_benchmark(name);
                for (int r = 0; r < args.reps; ++r) {
                    TuningHistory h = run_method(
                        b, m, b.full_budget,
                        args.seed + static_cast<std::uint64_t>(r));
                    overhead += h.tuner_seconds;
                    for (const Observation& o : h.observations) {
                        if (o.feasible)
                            modelled += o.value / 1e3;  // ms -> s
                    }
                    ++n;
                }
            }
            overhead /= n;
            modelled /= n;
            table.add_row({g.kernel, method_name(m), fmt(overhead, 3),
                           fmt(modelled, 2), fmt(overhead + modelled, 2)});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: heuristic search (ATF) has the smallest "
                 "overhead; model-based methods pay more per iteration but "
                 "choose faster-to-evaluate configurations, so their total "
                 "wall clock stays competitive (Table 10: BaCO second "
                 "fastest after ATF).\n";
    return 0;
}
