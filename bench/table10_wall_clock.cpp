// Regenerates Table 10: average wall-clock time of each autotuner on the
// TACO SpMM and SDDMM benchmarks, split into search overhead (measured) and
// modelled kernel evaluation time (the sum of simulated runtimes, which is
// what dominates on the paper's real testbed).
//
// A second section tracks the exec-engine speedup: the same repetition
// sweep run sequentially vs fanned out over the work-stealing thread pool
// (and BaCO itself at batch size 4), so the batched engine's wall-clock
// win is part of the bench trajectory.
//
// Usage: table10_wall_clock [--reps N] [--seed S] [--json [PATH]]
//
// --json writes BENCH_table10_wall_clock.json (or PATH): the per-
// (kernel, method) overhead/modelled-time rows plus the exec-engine
// speedup section, so the wall-clock trajectory is machine-tracked
// across PRs alongside BENCH_async_utilization.json.

#include <chrono>
#include <iostream>
#include <map>
#include <thread>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3,
                                          "BENCH_table10_wall_clock.json");
    const std::vector<Method>& methods = headline_methods();
    std::vector<std::string> json_rows;
    std::vector<std::string> json_engine_rows;

    print_banner(std::cout,
                 "Table 10: average wall-clock seconds per autotuning run "
                 "(TACO SpMM and SDDMM)");

    struct Group {
      const char* kernel;
      std::vector<const char*> names;
    };
    const Group groups[] = {
        {"SpMM", {"SpMM/scircuit", "SpMM/cage12", "SpMM/laminar_duct3D"}},
        {"SDDMM",
         {"SDDMM/email-Enron", "SDDMM/ACTIVSg10K", "SDDMM/Goodwin_040"}},
    };

    TextTable table({"Kernel", "Method", "search overhead [s]",
                     "modelled kernel time [s]", "total [s]"});
    for (const Group& g : groups) {
        for (Method m : methods) {
            double overhead = 0.0, modelled = 0.0;
            int n = 0;
            for (const char* name : g.names) {
                const Benchmark& b = find_benchmark(name);
                for (int r = 0; r < args.reps; ++r) {
                    TuningHistory h = run_method(
                        b, m, b.full_budget,
                        args.seed + static_cast<std::uint64_t>(r));
                    overhead += h.tuner_seconds;
                    for (const Observation& o : h.observations) {
                        if (o.feasible)
                            modelled += o.value / 1e3;  // ms -> s
                    }
                    ++n;
                }
            }
            overhead /= n;
            modelled /= n;
            table.add_row({g.kernel, method_name(m), fmt(overhead, 3),
                           fmt(modelled, 2), fmt(overhead + modelled, 2)});
            baco::bench::JsonWriter row;
            row.field("kernel", std::string(g.kernel))
                .field("method", std::string(method_name(m)))
                .field("search_overhead_seconds", overhead)
                .field("modelled_kernel_seconds", modelled)
                .field("total_seconds", overhead + modelled);
            json_rows.push_back(row.str());
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: heuristic search (ATF) has the smallest "
                 "overhead; model-based methods pay more per iteration but "
                 "choose faster-to-evaluate configurations, so their total "
                 "wall clock stays competitive (Table 10: BaCO second "
                 "fastest after ATF).\n";

    // ---- Sequential vs batched exec engine on the same budget. ----
    using Clock = std::chrono::steady_clock;
    auto wall = [](auto&& fn) {
        auto t0 = Clock::now();
        fn();
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    unsigned lanes = std::max(1u, std::thread::hardware_concurrency());

    print_banner(std::cout,
                 "Exec engine: sequential vs batched wall-clock "
                 "(same seeds, same budget; " +
                     std::to_string(lanes) + " hardware threads)");
    TextTable engine_table({"Benchmark", "Mode", "sequential [s]",
                            "parallel/batched [s]", "speedup"});
    const char* engine_benchmarks[] = {"SpMM/scircuit", "SDDMM/email-Enron"};
    for (const char* name : engine_benchmarks) {
        const Benchmark& b = find_benchmark(name);
        int reps = std::max(args.reps, 2 * static_cast<int>(lanes));

        // Suite fan-out: independent seed repetitions across the pool.
        double seq = wall([&] {
            run_repetitions(b, Method::kBaco, b.full_budget, reps,
                            args.seed);
        });
        double par = wall([&] {
            run_repetitions_parallel(b, Method::kBaco, b.full_budget, reps,
                                     args.seed);
        });
        engine_table.add_row({name, "suite reps x" + std::to_string(reps),
                              fmt(seq, 2), fmt(par, 2),
                              fmt(seq / std::max(par, 1e-9), 2) + "x"});
        {
            baco::bench::JsonWriter row;
            row.field("benchmark", std::string(name))
                .field("mode", "suite_reps_x" + std::to_string(reps))
                .field("sequential_seconds", seq)
                .field("parallel_seconds", par)
                .field("speedup", seq / std::max(par, 1e-9));
            json_engine_rows.push_back(row.str());
        }

        // Single run: serial loop vs batch-4 constant-liar engine.
        double run_seq = wall([&] {
            run_method(b, Method::kBaco, b.full_budget, args.seed);
        });
        double run_batch = wall([&] {
            EvalEngineOptions eopt;
            eopt.batch_size = 4;
            run_method_batched(b, Method::kBaco, b.full_budget, args.seed,
                               eopt);
        });
        engine_table.add_row({name, "single run, batch=4", fmt(run_seq, 2),
                              fmt(run_batch, 2),
                              fmt(run_seq / std::max(run_batch, 1e-9), 2) +
                                  "x"});
        {
            baco::bench::JsonWriter row;
            row.field("benchmark", std::string(name))
                .field("mode", std::string("single_run_batch4"))
                .field("sequential_seconds", run_seq)
                .field("parallel_seconds", run_batch)
                .field("speedup", run_seq / std::max(run_batch, 1e-9));
            json_engine_rows.push_back(row.str());
        }
    }
    engine_table.print(std::cout);
    std::cout << "\nSuite fan-out speedup approaches the core count (the "
                 "evaluations here are cheap simulations, so search "
                 "overhead dominates; with real compiler toolchains the "
                 "batched engine additionally overlaps compile+run "
                 "latency). Batch-4 trades per-iteration model refits for "
                 "fewer acquisition rounds.\n";

    if (!args.json_path.empty()) {
        baco::bench::JsonWriter json;
        json.field("bench", std::string("table10_wall_clock"))
            .field("reps", args.reps)
            .raw_field("rows", baco::bench::JsonWriter::array(json_rows))
            .raw_field("engine_rows",
                       baco::bench::JsonWriter::array(json_engine_rows));
        if (!baco::bench::write_json(args.json_path, json)) {
            std::cout << "cannot write " << args.json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << args.json_path << "\n";
    }
    return 0;
}
