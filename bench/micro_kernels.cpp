// Google-benchmark microbenchmarks of the executable TACO-substrate sparse
// kernels, demonstrating that the ExecSchedule parameters really change the
// measured performance of the C++ kernels (the examples autotune these).

#include <benchmark/benchmark.h>

#include "taco/generators.hpp"
#include "taco/kernels.hpp"

namespace {

using namespace baco;
using namespace baco::taco;

const CsrMatrix&
matrix()
{
    static const CsrMatrix m = [] {
        RngEngine rng(11);
        return generate_matrix(profile("scircuit"), 0.05, rng);
    }();
    return m;
}

void
BM_SpmvScheduled(benchmark::State& state)
{
    const CsrMatrix& b = matrix();
    RngEngine rng(1);
    std::vector<double> c(static_cast<std::size_t>(b.cols));
    for (double& v : c)
        v = rng.uniform();
    ExecSchedule s;
    s.row_chunk = static_cast<int>(state.range(0));
    s.unroll = static_cast<int>(state.range(1));
    for (auto _ : state) {
        std::vector<double> a = spmv_scheduled(b, c, s);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_SpmvScheduled)
    ->Args({16, 1})->Args({256, 1})->Args({256, 4})->Args({4096, 8})
    ->Unit(benchmark::kMicrosecond);

void
BM_SpmmScheduled(benchmark::State& state)
{
    const CsrMatrix& b = matrix();
    RngEngine rng(2);
    Matrix c(static_cast<std::size_t>(b.cols), 32);
    for (double& v : c.data())
        v = rng.uniform();
    ExecSchedule s;
    s.row_chunk = static_cast<int>(state.range(0));
    s.col_tile = static_cast<int>(state.range(1));
    for (auto _ : state) {
        Matrix a = spmm_scheduled(b, c, s);
        benchmark::DoNotOptimize(a.data().data());
    }
}
BENCHMARK(BM_SpmmScheduled)
    ->Args({64, 8})->Args({64, 32})->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

void
BM_Sddmm(benchmark::State& state)
{
    const CsrMatrix& b = matrix();
    RngEngine rng(3);
    Matrix c(static_cast<std::size_t>(b.rows), 16);
    Matrix d(static_cast<std::size_t>(b.cols), 16);
    for (double& v : c.data())
        v = rng.uniform();
    for (double& v : d.data())
        v = rng.uniform();
    for (auto _ : state) {
        std::vector<double> out = sddmm(b, c, d);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Sddmm)->Unit(benchmark::kMillisecond);

}  // namespace
