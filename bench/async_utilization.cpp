// Async-mode utilization harness: on a synthetic benchmark with
// heavy-tailed per-configuration evaluation times (delays drawn 1x-20x,
// the shape CATBench reports for compiler evaluation), 4 workers driven
// tell-as-results-land must reach the same best-found quality as the
// barriered batch engine at >= 1.5x lower wall-clock. The model-based
// BaCO row (async + suggest-ahead pipelining) must clear the same 1.5x
// bar. Exit code 0 only when all hold, so scripts/check.sh can gate on
// it.
//
// Usage: async_utilization [--reps N] [--seed S] [--json [PATH]]
//
// --json writes BENCH_async_utilization.json (or PATH): per-row
// wall-clocks and speedups, the mean speedup against the 1.5x gate and
// the quality verdict — the machine-readable perf trajectory CI
// uploads as an artifact and scripts/check.sh's bench stage consumes.

#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "harness_util.hpp"
#include "exec/eval_engine.hpp"
#include "obs/metrics.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

namespace {

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile_i", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_ordinal("tile_j", {2, 4, 8, 16, 32, 64, 128, 256}, true);
    s.add_categorical("layout", {"row", "col", "blocked"});
    s.add_ordinal("unroll", {1, 2, 4, 8, 16}, true);
    return s;
}

/**
 * Heavy-tailed evaluation delay for a configuration: a deterministic
 * draw in [1x, 20x] with most mass near 1x and a long tail (u^5 over
 * the config hash), modelling compile times that vary by orders of
 * magnitude across configurations.
 */
double
delay_factor(const Configuration& c)
{
    double u =
        static_cast<double>(config_hash(c) % 10000u) / 10000.0;
    return 1.0 + 19.0 * std::pow(u, 5);
}

constexpr double kDelayUnitMs = 1.5;

EvalResult
slow_eval(const Configuration& c, RngEngine& rng)
{
    double ti = static_cast<double>(as_int(c[0]));
    double tj = static_cast<double>(as_int(c[1]));
    double layout = static_cast<double>(as_int(c[2]));
    double unroll = static_cast<double>(as_int(c[3]));
    double v = 1.0 + std::pow(std::log2(ti / 32.0), 2) +
               std::pow(std::log2(tj / 16.0), 2) + 0.7 * layout +
               0.3 * std::pow(std::log2(unroll / 4.0), 2);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        kDelayUnitMs * delay_factor(c)));
    return EvalResult{v * rng.lognormal_factor(0.03), true};
}

struct Run {
  double wall = 0.0;
  double best = 0.0;
  std::size_t evals = 0;
  // Per-phase breakdown from the obs registry (deltas over this run):
  // where the wall-clock went — objective work, pool queueing, tuner.
  double objective_s = 0.0;
  double queue_wait_s = 0.0;
  double tuner_s = 0.0;
};

Run
run_mode(const SearchSpace& space, Method m, int budget, std::uint64_t seed,
         bool async, bool suggest_ahead = false)
{
    using Clock = std::chrono::steady_clock;
    std::unique_ptr<AskTellTuner> tuner =
        make_ask_tell(space, m, budget, /*doe_samples=*/8, seed);
    EvalEngineOptions eopt;
    eopt.num_threads = 4;
    eopt.batch_size = 4;
    eopt.async_mode = async;
    eopt.suggest_ahead = suggest_ahead;
    EvalEngine engine(eopt);
    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    auto t0 = Clock::now();
    TuningHistory h = engine.run(*tuner, slow_eval);
    Run r;
    r.wall = std::chrono::duration<double>(Clock::now() - t0).count();
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);
    r.best = h.best_value;
    r.evals = h.size();
    r.objective_s = delta.value("engine.objective_seconds");
    r.queue_wait_s = delta.value("engine.queue_wait_seconds");
    r.tuner_s = delta.value("tuner.suggest_seconds") +
                delta.value("tuner.observe_seconds");
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3,
                                          "BENCH_async_utilization.json");
    const int budget = 48;
    SearchSpace space = make_space();

    print_banner(std::cout,
                 "Async utilization: batched vs tell-as-results-land on "
                 "heavy-tailed evaluation delays (4 workers, delays " +
                     std::string("1x-20x, budget ") +
                     std::to_string(budget) + ")");

    TextTable table({"Method", "seed", "batched [s]", "async [s]", "speedup",
                     "batched best", "async best"});
    double speedup_sum = 0.0;
    int speedup_n = 0;
    bool quality_ok = true;
    std::vector<std::string> json_rows;

    auto record = [&](Method m, std::uint64_t seed, const Run& batched,
                      const Run& async, bool in_mean) {
        double speedup = batched.wall / std::max(async.wall, 1e-9);
        table.add_row({method_name(m), std::to_string(seed),
                       fmt(batched.wall, 3), fmt(async.wall, 3),
                       fmt(speedup, 2) + "x", fmt(batched.best, 4),
                       fmt(async.best, 4)});
        baco::bench::JsonWriter row;
        // Per-seed rows are reported but not gated by bench_diff (wall
        // clocks are machine-dependent); the dimensionless gate is the
        // summary row's mean speedup. in_mean marks the rows it covers.
        row.field("key", std::string(method_name(m)) + "/s" +
                             std::to_string(seed))
            .field("method", std::string(method_name(m)))
            .field("seed", seed)
            .field("gated", false)
            .field("in_mean", in_mean)
            .field("batched_seconds", batched.wall)
            .field("async_seconds", async.wall)
            .field("speedup", speedup)
            .field("batched_best", batched.best)
            .field("async_best", async.best)
            .field("evals", static_cast<std::uint64_t>(async.evals))
            .field("batched_objective_s", batched.objective_s)
            .field("batched_queue_wait_s", batched.queue_wait_s)
            .field("batched_tuner_s", batched.tuner_s)
            .field("async_objective_s", async.objective_s)
            .field("async_queue_wait_s", async.queue_wait_s)
            .field("async_tuner_s", async.tuner_s);
        json_rows.push_back(row.str());
        return speedup;
    };

    for (int rep = 0; rep < args.reps; ++rep) {
        std::uint64_t seed = args.seed + static_cast<std::uint64_t>(rep);
        Run batched = run_mode(space, Method::kUniform, budget, seed, false);
        Run async = run_mode(space, Method::kUniform, budget, seed, true);
        speedup_sum += record(Method::kUniform, seed, batched, async, true);
        ++speedup_n;
        // A sampling tuner proposes the identical configuration sequence
        // either way, so async must reproduce the best exactly.
        if (async.best != batched.best || async.evals != batched.evals)
            quality_ok = false;
    }

    // Model-based row: async with suggest-ahead pipelining vs batched.
    // Constant-liar fantasies make the async search path diverge from
    // the batched one by design, so there is no quality-parity check;
    // the gate is utilization — with the incremental GP path and the
    // prefetched next suggestion, BaCO must clear the same 1.5x bar as
    // the sampling tuner instead of stalling its workers on refits.
    double baco_speedup = 0.0;
    {
        Run batched =
            run_mode(space, Method::kBaco, budget, args.seed, false);
        Run async = run_mode(space, Method::kBaco, budget, args.seed, true,
                             /*suggest_ahead=*/true);
        baco_speedup =
            record(Method::kBaco, args.seed, batched, async, false);
    }
    table.print(std::cout);

    double mean_speedup = speedup_sum / std::max(1, speedup_n);
    const double target = 1.5;
    bool speedup_ok = mean_speedup >= target;
    bool baco_speedup_ok = baco_speedup >= target;
    std::cout << "\nmean utilization speedup (Uniform rows): "
              << fmt(mean_speedup, 2) << "x (target >= 1.5x) — "
              << (speedup_ok ? "ok" : "FAILED") << "\n"
              << "BaCO suggest-ahead speedup: " << fmt(baco_speedup, 2)
              << "x (target >= 1.5x) — "
              << (baco_speedup_ok ? "ok" : "FAILED") << "\n"
              << "same-quality check (identical best, full budget): "
              << (quality_ok ? "ok" : "FAILED") << "\n";

    if (!args.json_path.empty()) {
        // The one bench_diff-gated row: mean utilization speedup, a
        // dimensionless ratio that transfers across machines. Tolerance
        // is wider than the 0.15 default — sleep-based delays schedule
        // slightly differently run to run.
        baco::bench::JsonWriter summary;
        summary.field("key", std::string("summary"))
            .field("gated", true)
            .field("gate_metric", std::string("mean_speedup"))
            .field("gate_direction", std::string("higher_better"))
            .field("tolerance", 0.25)
            .field("mean_speedup", mean_speedup);
        json_rows.push_back(summary.str());
        // The BaCO suggest-ahead gate, same dimensionless shape. One
        // seed and a model in the loop: wider tolerance than the
        // Uniform mean.
        baco::bench::JsonWriter baco_row;
        baco_row.field("key", std::string("summary/baco"))
            .field("gated", true)
            .field("gate_metric", std::string("baco_speedup"))
            .field("gate_direction", std::string("higher_better"))
            .field("tolerance", 0.3)
            .field("baco_speedup", baco_speedup);
        json_rows.push_back(baco_row.str());
        baco::bench::JsonWriter json;
        json.field("bench", std::string("async_utilization"))
            .field("budget", budget)
            .field("reps", args.reps)
            .field("workers", 4)
            .field("mean_speedup", mean_speedup)
            .field("baco_speedup", baco_speedup)
            .field("target_speedup", target)
            .field("speedup_ok", speedup_ok)
            .field("baco_speedup_ok", baco_speedup_ok)
            .field("quality_ok", quality_ok)
            .raw_field("rows", baco::bench::JsonWriter::array(json_rows));
        if (!baco::bench::write_json(args.json_path, json)) {
            std::cout << "cannot write " << args.json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << args.json_path << "\n";
    }
    return speedup_ok && baco_speedup_ok && quality_ok ? 0 : 1;
}
