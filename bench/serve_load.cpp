// Serve-load harness: the socket serving stack under multi-client
// contention. Three phases against one Acceptor each:
//
//   solo    1 client x 1 session       — the uncontended baseline;
//   loaded  4 clients x 2 sessions     — 8 sessions tuning concurrently,
//           measuring aggregate run throughput and client-observed
//           suggest p50/p99 under contention;
//   spill   1 client x 4 sessions with max_live_sessions=1 — every
//           session switch forces a spill+reload round trip, measuring
//           the bounded registry's overhead from the serve.spill/.reload
//           histograms.
//
// Plus the CONCURRENT-RUNS scenario: 4 clients each issue one fleet
// `run` frame against a shared 4-worker fleet — first sequentially
// (one run at a time), then all 4 overlapping. The run-multiplexed
// Coordinator leases workers to every active run, so the overlapping
// leg must finish in a fraction of the serial wall; the ratio
// (serial wall / concurrent wall) is gated as
// concurrent_runs_scaling_x.
//
// The gated quantities are dimensionless ratios (loaded/solo eval
// throughput, serial/concurrent fleet-run wall) — contention
// behaviour, which transfers across machines where absolute evals/s
// do not. Absolute rows ride along for the trajectory but are not
// gated.
//
// --trace additionally runs the distributed-trace leg: two baco_worker
// CHILD PROCESSES (path from --worker-bin, default ./baco_worker) are
// attached to a Coordinator, a sharded run is driven with tracing on,
// and the merged Chrome timeline — server track plus one track per
// worker process, all under one run id — is exported (default
// trace_serve_distributed.json; load in chrome://tracing). trace_ok in
// the JSON asserts both worker tracks and the run id made it into the
// file.
//
// Usage: serve_load [--reps N] [--seed S] [--json [PATH]]
//                   [--trace [PATH]] [--worker-bin PATH]

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::serve;
using baco::bench::HarnessArgs;
using baco::bench::JsonWriter;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kBench = "SDDMM/email-Enron";

std::string
unique_socket_path()
{
    static int counter = 0;
    return "/tmp/baco_bench_load_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

/** Exact quantile of a sample set (sorted copy, linear interpolation). */
double
exact_percentile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double rank = q * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

/** Everything one load phase measures. */
struct PhaseResult {
  bool ok = true;
  std::uint64_t evals = 0;
  double wall_s = 0.0;
  std::vector<double> suggest_ms;  ///< client-observed rpc latencies

  double throughput() const { return evals / std::max(wall_s, 1e-9); }
};

/**
 * Drive `sessions_per_client` sessions to `budget` evaluations each from
 * every one of `clients` connections (one thread per client, sessions
 * round-robin within a client, evaluation client-side — the
 * suggest/observe exchange the protocol is built around). The server is
 * one Acceptor on a fresh SessionManager configured by `sopt`.
 */
PhaseResult
run_phase(int clients, int sessions_per_client, int budget, int batch,
          std::uint64_t seed_base, const SessionManagerOptions& sopt,
          bool expect_spill = false)
{
    PhaseResult phase;
    std::string path = unique_socket_path();
    Listener listener;
    if (!listener.open(*parse_socket_address("unix:" + path))) {
        phase.ok = false;
        return phase;
    }
    SessionManager sessions(sopt);
    ServerContext ctx;
    ctx.sessions = &sessions;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    const Benchmark& bench = suite::find_benchmark(kBench);
    std::vector<std::thread> threads;
    std::vector<PhaseResult> per_client(
        static_cast<std::size_t>(clients));

    auto t0 = Clock::now();
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            PhaseResult& mine = per_client[static_cast<std::size_t>(c)];
            std::unique_ptr<Transport> t = connect_socket("unix:" + path);
            if (!t) {
                mine.ok = false;
                return;
            }
            SessionClient client(*t);
            if (!client.handshake()) {
                mine.ok = false;
                return;
            }
            std::vector<std::string> names;
            std::vector<std::uint64_t> seeds;
            for (int s = 0; s < sessions_per_client; ++s) {
                names.push_back("c" + std::to_string(c) + "-s" +
                                std::to_string(s));
                seeds.push_back(seed_base + 10 * c + s);
                if (client.open(names.back(), kBench, "Uniform", budget,
                                seeds.back())
                        .type != MsgType::kOpened) {
                    mine.ok = false;
                    return;
                }
            }
            // Round-robin across this client's sessions so a bounded
            // registry (the spill phase) keeps ping-ponging tuners.
            for (int done = 0; done < budget; done += batch) {
                for (int s = 0; s < sessions_per_client; ++s) {
                    auto s0 = Clock::now();
                    Message configs = client.suggest(names[s], batch);
                    mine.suggest_ms.push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - s0)
                            .count());
                    if (configs.type != MsgType::kConfigs) {
                        mine.ok = false;
                        return;
                    }
                    std::vector<ObservedResult> results;
                    for (std::size_t i = 0; i < configs.configs.size();
                         ++i) {
                        ObservedResult r;
                        r.config = configs.configs[i];
                        EvalResult e =
                            evaluate_on(bench, r.config, seeds[s],
                                        configs.index + i);
                        r.value = e.value;
                        r.feasible = e.feasible;
                        results.push_back(std::move(r));
                    }
                    mine.evals += configs.configs.size();
                    if (client.observe(names[s], std::move(results))
                            .type != MsgType::kOk) {
                        mine.ok = false;
                        return;
                    }
                }
            }
            for (const std::string& name : names) {
                if (client.close(name).type != MsgType::kOk)
                    mine.ok = false;
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    phase.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    for (const PhaseResult& mine : per_client) {
        phase.ok = phase.ok && mine.ok;
        phase.evals += mine.evals;
        phase.suggest_ms.insert(phase.suggest_ms.end(),
                                mine.suggest_ms.begin(),
                                mine.suggest_ms.end());
    }
    std::uint64_t expected =
        static_cast<std::uint64_t>(clients) *
        static_cast<std::uint64_t>(sessions_per_client) *
        static_cast<std::uint64_t>(budget);
    phase.ok = phase.ok && phase.evals == expected;
    // The spill phase must actually have exercised the spill/reload
    // ping-pong it claims to measure.
    if (expect_spill)
        phase.ok = phase.ok && sessions.spill_count() > 0 &&
                   sessions.reload_count() > 0;
    acceptor.stop();
    server.join();
    return phase;
}

/** One leg of the concurrent-runs scenario. */
struct FleetRunsResult {
  bool ok = true;
  std::uint64_t evals = 0;
  double wall_s = 0.0;
};

/**
 * A loopback worker whose every evaluation costs `delay_ms` of wall
 * clock on top of the real (deterministic) value — the shape of an
 * actual compile-and-run black box. Without the delay a loopback
 * evaluation is sub-microsecond and the scenario measures only frame
 * plumbing; with it the runs are latency-bound, which is the regime
 * the run multiplexing exists for.
 */
void
delayed_worker_loop(std::shared_ptr<Transport> t, int delay_ms)
{
    Message hello;
    hello.type = MsgType::kHello;
    hello.text = "worker";
    hello.capacity = 1;
    if (!t->send(encode(hello)))
        return;
    std::string line;
    std::uint64_t evaluated = 0;
    while (t->recv(line) == RecvStatus::kOk) {
        Message req;
        if (!decode(line, req))
            continue;
        if (req.type == MsgType::kShutdown) {
            Message bye;
            bye.type = MsgType::kGoodbye;
            bye.evals = evaluated;
            t->send(encode(bye));
            break;
        }
        if (req.type != MsgType::kEvaluate)
            continue;
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        const Benchmark& b = suite::find_benchmark(req.benchmark);
        EvalResult r = evaluate_on(b, req.config, req.seed, req.index);
        Message reply;
        reply.type = MsgType::kResult;
        reply.id = req.id;
        reply.index = req.index;
        reply.run = req.run;
        reply.value = r.value;
        reply.feasible = r.feasible;
        reply.eval_seconds = delay_ms / 1e3;
        ++evaluated;
        if (!t->send(encode(reply)))
            break;
    }
}

/**
 * `clients` fleet-driven run frames against one Acceptor backed by a
 * shared 4-worker loopback fleet — sequentially (the serial baseline)
 * or all overlapping (the multiplexed Coordinator's case). Each run is
 * latency-bound (n=1 with a per-eval worker delay), so the serial leg
 * leaves the fleet almost idle and overlapping runs reclaim that idle
 * capacity.
 */
FleetRunsResult
run_fleet_phase(int clients, bool concurrent, int budget,
                std::uint64_t seed_base)
{
    FleetRunsResult out;
    std::string path = unique_socket_path();
    Listener listener;
    if (!listener.open(*parse_socket_address("unix:" + path))) {
        out.ok = false;
        return out;
    }
    SessionManager sessions;
    Coordinator coordinator;
    constexpr int kEvalDelayMs = 1;
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        auto [coordinator_end, worker_end] = loopback_pair();
        workers.emplace_back(
            delayed_worker_loop,
            std::shared_ptr<Transport>(std::move(worker_end)),
            kEvalDelayMs);
        if (coordinator.add_worker(std::move(coordinator_end)) < 0)
            out.ok = false;
    }
    ServerContext ctx;
    ctx.sessions = &sessions;
    ctx.coordinator = &coordinator;
    Acceptor acceptor(std::move(listener), ctx);
    std::thread server([&acceptor] { acceptor.run(); });

    std::vector<char> ok(static_cast<std::size_t>(clients), 1);
    auto one_client = [&](int c) {
        std::unique_ptr<Transport> t = connect_socket("unix:" + path);
        if (!t) {
            ok[static_cast<std::size_t>(c)] = 0;
            return;
        }
        SessionClient client(*t);
        std::string name = "run" + std::to_string(c);
        bool fine =
            client.handshake() &&
            client.open(name, kBench, "Uniform", budget, seed_base + c)
                    .type == MsgType::kOpened;
        if (fine) {
            Message run;
            run.type = MsgType::kRun;
            run.session = name;
            run.n = 1;
            Message done = client.rpc(std::move(run));
            fine = done.type == MsgType::kDone &&
                   done.evals == static_cast<std::uint64_t>(budget);
        }
        fine = fine && client.close(name).type == MsgType::kOk;
        ok[static_cast<std::size_t>(c)] = fine ? 1 : 0;
    };

    auto t0 = Clock::now();
    if (concurrent) {
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c)
            threads.emplace_back(one_client, c);
        for (std::thread& t : threads)
            t.join();
    } else {
        for (int c = 0; c < clients; ++c)
            one_client(c);
    }
    out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    for (char fine : ok)
        out.ok = out.ok && fine;
    out.evals = static_cast<std::uint64_t>(clients) *
                static_cast<std::uint64_t>(budget);
    acceptor.stop();
    server.join();
    coordinator.shutdown();
    for (std::thread& w : workers)
        w.join();
    return out;
}

/** Mean milliseconds of one registry histogram over a snapshot delta. */
double
hist_mean_ms(const obs::MetricsSnapshot& delta, const char* name)
{
    const obs::MetricValue* m = delta.find(name);
    if (!m || m->histogram.count == 0)
        return 0.0;
    return 1e3 * m->histogram.sum /
           static_cast<double>(m->histogram.count);
}

/**
 * The distributed-trace leg: 2 baco_worker child processes, one traced
 * sharded run, one merged Chrome timeline. True only when the exported
 * file carries the run id and BOTH worker tracks.
 */
bool
run_trace_leg(const std::string& worker_bin, const std::string& trace_path,
              std::uint64_t seed)
{
    if (::access(worker_bin.c_str(), X_OK) != 0) {
        std::cout << "trace leg: " << worker_bin
                  << " not executable — cannot run\n";
        return false;
    }
    obs::Trace::enable();
    obs::Trace::set_run_id("serve-load-" + std::to_string(::getpid()));
    {
        Coordinator coordinator;
        std::vector<int> pids;
        for (int w = 0; w < 2; ++w) {
            ChildProcess child = spawn_process(
                {worker_bin, "--heartbeat-ms", "200", "--log-level",
                 "error"});
            if (!child.transport ||
                coordinator.add_worker(std::move(child.transport)) < 0) {
                std::cout << "trace leg: failed to attach worker " << w
                          << "\n";
                return false;
            }
            pids.push_back(child.pid);
        }
        const Benchmark& bench = suite::find_benchmark(kBench);
        auto space = bench.make_space(SpaceVariant{});
        std::unique_ptr<AskTellTuner> tuner = suite::make_ask_tell(
            *space, suite::Method::kUniform, /*budget=*/24,
            /*doe_samples=*/8, seed);
        BatchSpec spec;
        spec.benchmark = kBench;
        spec.run_seed = seed;
        coordinator.drive(*tuner, spec, /*batch_size=*/4);
        // shutdown() drains the workers' goodbye frames — the final
        // span shipment — before the export below.
        coordinator.shutdown();
        for (int pid : pids)
            wait_process(pid);
    }
    obs::Trace::disable();
    if (!obs::Trace::export_chrome(trace_path)) {
        std::cout << "trace leg: cannot write " << trace_path << "\n";
        return false;
    }
    std::ifstream in(trace_path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string trace = buf.str();
    bool merged = trace.find("\"worker-0\"") != std::string::npos &&
                  trace.find("\"worker-1\"") != std::string::npos &&
                  trace.find(obs::Trace::run_id()) != std::string::npos &&
                  trace.find("worker.evaluate") != std::string::npos;
    std::cout << "trace leg: wrote " << trace_path
              << " (server + 2 worker tracks, run "
              << obs::Trace::run_id() << ") ["
              << (merged ? "ok" : "FAILED") << "]\n";
    return merged;
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/2,
                                          "BENCH_serve_load.json");
    std::string trace_path;
    std::string worker_bin = "./baco_worker";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                trace_path = argv[++i];
            else
                trace_path = "trace_serve_distributed.json";
        } else if (std::strcmp(argv[i], "--worker-bin") == 0 &&
                   i + 1 < argc) {
            worker_bin = argv[++i];
        }
    }

    const int reps = std::max(1, args.reps);
    const int batch = 4;
    const int budget = 24 * reps;        // per session, solo and loaded
    const int spill_budget = 8 * reps;   // per session, spill phase
    const int clients = 4;
    const int sessions_per_client = 2;

    suite::print_banner(std::cout,
                        "Serve load: socket serving under contention (" +
                            std::to_string(clients) + " clients x " +
                            std::to_string(sessions_per_client) +
                            " sessions, budget " + std::to_string(budget) +
                            "/session)");

    SessionManagerOptions plain;
    PhaseResult solo =
        run_phase(1, 1, budget, batch, args.seed, plain);
    PhaseResult loaded = run_phase(clients, sessions_per_client, budget,
                                   batch, args.seed + 100, plain);

    // Spill phase: a bounded registry that must ping-pong 4 sessions
    // through 1 live slot. Overhead comes from the serve.spill/.reload
    // histograms over this phase's registry delta.
    std::string ckpt_dir =
        "/tmp/baco_bench_spill_" + std::to_string(::getpid());
    SessionManagerOptions bounded;
    bounded.checkpoint_dir = ckpt_dir;
    bounded.max_live_sessions = 1;
    obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    PhaseResult spill = run_phase(1, 4, spill_budget, batch,
                                  args.seed + 200, bounded,
                                  /*expect_spill=*/true);
    obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_since(before);
    double spill_ms = hist_mean_ms(delta, "serve.spill_seconds");
    double reload_ms = hist_mean_ms(delta, "serve.reload_seconds");

    double scaling_x = loaded.throughput() / std::max(solo.throughput(),
                                                      1e-9);

    // Concurrent-runs scenario: 4 overlapping fleet `run`s on a shared
    // 4-worker fleet versus the same 4 runs one at a time.
    const int fleet_clients = 4;
    const int fleet_budget = 16 * reps;
    FleetRunsResult serial_runs = run_fleet_phase(
        fleet_clients, /*concurrent=*/false, fleet_budget,
        args.seed + 300);
    FleetRunsResult concurrent_runs = run_fleet_phase(
        fleet_clients, /*concurrent=*/true, fleet_budget,
        args.seed + 300);
    double concurrent_runs_scaling_x =
        serial_runs.wall_s / std::max(concurrent_runs.wall_s, 1e-9);

    bool serve_ok = solo.ok && loaded.ok && spill.ok && serial_runs.ok &&
                    concurrent_runs.ok;

    suite::TextTable table({"Phase", "evals", "wall [s]", "evals/s",
                            "suggest p50 [ms]", "suggest p99 [ms]"});
    auto add_phase = [&](const char* name, const PhaseResult& p) {
        table.add_row({name, std::to_string(p.evals),
                       suite::fmt(p.wall_s, 3),
                       suite::fmt(p.throughput(), 1),
                       suite::fmt(exact_percentile(p.suggest_ms, 0.50), 3),
                       suite::fmt(exact_percentile(p.suggest_ms, 0.99), 3)});
    };
    add_phase("solo", solo);
    add_phase("loaded", loaded);
    add_phase("spill", spill);
    table.print(std::cout);
    std::cout << "throughput scaling loaded/solo = "
              << suite::fmt(scaling_x, 2) << "x; spill "
              << suite::fmt(spill_ms, 3) << " ms, reload "
              << suite::fmt(reload_ms, 3) << " ms ["
              << (serve_ok ? "ok" : "FAILED") << "]\n";
    std::cout << "concurrent fleet runs: serial "
              << suite::fmt(serial_runs.wall_s, 3) << " s, overlapped "
              << suite::fmt(concurrent_runs.wall_s, 3) << " s — "
              << suite::fmt(concurrent_runs_scaling_x, 2)
              << "x aggregate speedup over " << fleet_clients
              << " tenants\n";

    bool trace_ok = true;
    if (!trace_path.empty())
        trace_ok = run_trace_leg(worker_bin, trace_path, args.seed);

    if (!args.json_path.empty()) {
        std::vector<std::string> rows;
        auto phase_row = [&](const char* name, const PhaseResult& p) {
            JsonWriter row;
            row.field("key", std::string("phase/") + name)
                .field("gated", false)
                .field("evals", p.evals)
                .field("wall_s", p.wall_s)
                .field("throughput_eps", p.throughput())
                .field("suggest_p50_ms",
                       exact_percentile(p.suggest_ms, 0.50))
                .field("suggest_p99_ms",
                       exact_percentile(p.suggest_ms, 0.99));
            rows.push_back(row.str());
        };
        phase_row("solo", solo);
        phase_row("loaded", loaded);
        phase_row("spill", spill);
        JsonWriter overhead;
        overhead.field("key", std::string("spill_overhead"))
            .field("gated", false)
            .field("spill_ms", spill_ms)
            .field("reload_ms", reload_ms);
        rows.push_back(overhead.str());
        // The gate: dimensionless contention scaling. higher_better —
        // the committed baseline comes from a small machine, so more
        // parallel hardware only improves the ratio; a regression means
        // the serving stack itself got worse at handling contention.
        JsonWriter gate;
        gate.field("key", std::string("scaling"))
            .field("gated", true)
            .field("gate_metric", std::string("scaling_x"))
            .field("gate_direction", std::string("higher_better"))
            .field("tolerance", 0.45)
            .field("scaling_x", scaling_x);
        rows.push_back(gate.str());
        // The run-multiplexing gate: overlapping fleet runs must beat
        // serializing them. Also dimensionless and higher_better.
        JsonWriter cgate;
        cgate.field("key", std::string("concurrent_runs"))
            .field("gated", true)
            .field("gate_metric",
                   std::string("concurrent_runs_scaling_x"))
            .field("gate_direction", std::string("higher_better"))
            .field("tolerance", 0.45)
            .field("concurrent_runs_scaling_x", concurrent_runs_scaling_x)
            .field("serial_wall_s", serial_runs.wall_s)
            .field("concurrent_wall_s", concurrent_runs.wall_s)
            .field("fleet_clients", fleet_clients)
            .field("fleet_budget_per_run", fleet_budget);
        rows.push_back(cgate.str());

        JsonWriter json;
        json.field("bench", std::string("serve_load"))
            .field("reps", reps)
            .field("clients", clients)
            .field("sessions_per_client", sessions_per_client)
            .field("budget_per_session", budget)
            .field("serve_ok", serve_ok)
            .field("trace_ok", trace_ok)
            .raw_field("rows", JsonWriter::array(rows));
        if (!baco::bench::write_json(args.json_path, json)) {
            std::cout << "cannot write " << args.json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << args.json_path << "\n";
    }
    return serve_ok && trace_ok ? 0 : 1;
}
