// Regenerates the paper's Table 3: the benchmark search-space inventory
// (dimensions, parameter types, constraint classes, dense/feasible sizes,
// budgets) for this repository's substituted substrates.

#include <cstdio>
#include <iostream>

#include "suite/registry.hpp"
#include "suite/report.hpp"

using namespace baco;
using namespace baco::suite;

int
main()
{
    print_banner(std::cout, "Table 3: benchmark search spaces (this repo's "
                            "substituted substrates)");

    TextTable table({"Framework", "Benchmark", "Dim", "Params", "Constr.",
                     "Space size", "Feasible", "Full Budget"});
    for (const Benchmark& b : all_benchmarks()) {
        SpaceInfo info = space_info(b);
        char dense[32], feas[32];
        std::snprintf(dense, sizeof dense, "%.1e", info.dense_size);
        std::snprintf(feas, sizeof feas, "%.1e", info.feasible_size);
        table.add_row({info.framework, info.name, std::to_string(info.dims),
                       info.param_types, info.constraint_types, dense, feas,
                       std::to_string(info.full_budget)});
    }
    table.print(std::cout);

    std::cout << "\nNote: parameter types and constraint classes match the "
                 "paper's Table 3 exactly;\nspace cardinalities are of the "
                 "same character (feasible << dense where the paper\nsays "
                 "so) but not digit-for-digit identical — see DESIGN.md "
                 "Sec. 5.\n";
    return 0;
}
