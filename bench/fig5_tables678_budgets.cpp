// Regenerates Fig. 5 and Tables 5/6/7/8: performance relative to expert at
// tiny (1/3), small (2/3) and full budgets for every benchmark and method,
// plus the count of runs reaching expert level (Table 5).
//
// One full-budget run per (benchmark, method, repetition) provides all
// three tiers by slicing the best-so-far trajectory.
//
// Usage: fig5_tables678_budgets [--reps N] [--seed S]

#include <iostream>
#include <map>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;
using baco::bench::safe_geomean;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/5);
    const std::vector<Method>& methods = headline_methods();

    std::cout << "Running all benchmarks x " << methods.size()
              << " methods x " << args.reps
              << " repetitions (paper: 30; use --reps 30 to match)...\n";

    // benchmark name -> method -> stats.
    std::map<std::string, std::map<Method, RepStats>> results;
    for (const Benchmark& b : all_benchmarks()) {
        for (Method m : methods) {
            results[b.name][m] = run_repetitions(b, m, b.full_budget,
                                                 args.reps, args.seed);
        }
        std::cout << "  done: " << b.name << "\n" << std::flush;
    }

    // ---- Tables 6/7/8: relative performance per budget tier. ----
    struct Tier {
      const char* title;
      int (*budget)(const Benchmark&);
    };
    const Tier tiers[] = {
        {"Table 6: performance relative to expert, TINY budget (1/3)",
         [](const Benchmark& b) { return b.tiny_budget(); }},
        {"Table 7: performance relative to expert, SMALL budget (2/3)",
         [](const Benchmark& b) { return b.small_budget(); }},
        {"Table 8: performance relative to expert, FULL budget",
         [](const Benchmark& b) { return b.full_budget; }},
    };

    // Collect per-framework means for the Fig. 5 summary.
    // tier -> framework -> method -> mean relative performance.
    std::map<int, std::map<std::string, std::map<Method, double>>> fig5;

    for (int t = 0; t < 3; ++t) {
        print_banner(std::cout, tiers[t].title);
        std::vector<std::string> headers{"Framework", "Benchmark"};
        for (Method m : methods)
            headers.push_back(method_name(m));
        TextTable table(headers);

        std::map<std::string, std::map<Method, std::vector<double>>> by_fw;
        std::map<Method, std::vector<double>> overall;

        for (const Benchmark& b : all_benchmarks()) {
            std::vector<std::string> row{b.framework, b.name};
            int at = tiers[t].budget(b);
            for (Method m : methods) {
                double rel = results[b.name][m].mean_rel_to_reference(
                    b.reference_cost, at);
                row.push_back(fmt(rel, 2));
                by_fw[b.framework][m].push_back(rel);
                overall[m].push_back(rel);
            }
            table.add_row(row);
        }
        for (const char* fw : {"TACO", "RISE", "HPVM2FPGA"}) {
            std::vector<std::string> row{fw, "(mean)"};
            for (Method m : methods) {
                double mean_rel = mean(by_fw[fw][m]);
                row.push_back(fmt(mean_rel, 2));
                fig5[t][fw][m] = mean_rel;
            }
            table.add_row(row);
        }
        std::vector<std::string> row{"All", "(mean)"};
        for (Method m : methods)
            row.push_back(fmt(mean(overall[m]), 2));
        table.add_row(row);
        table.print(std::cout);
    }

    // ---- Fig. 5 summary. ----
    print_banner(std::cout,
                 "Fig. 5: average performance relative to expert per "
                 "framework and budget");
    TextTable fig5_table({"Framework", "Budget", "BaCO", "ATF", "Ytopt",
                          "Uniform", "CoT"});
    const char* tier_names[] = {"tiny", "small", "full"};
    for (const char* fw : {"TACO", "RISE", "HPVM2FPGA"}) {
        for (int t = 0; t < 3; ++t) {
            std::vector<std::string> row{fw, tier_names[t]};
            for (Method m : methods)
                row.push_back(fmt(fig5[t][fw][m], 2) + "x");
            fig5_table.add_row(row);
        }
    }
    fig5_table.print(std::cout);

    // ---- Table 5: runs reaching expert-level performance. ----
    print_banner(std::cout, "Table 5: runs (of " + std::to_string(args.reps) +
                                ") reaching expert-level performance with "
                                "the full budget");
    std::vector<std::string> headers{"Framework", "Benchmark"};
    for (Method m : methods)
        headers.push_back(method_name(m));
    TextTable t5(headers);
    std::map<std::string, std::map<Method, int>> fw_counts;
    for (const Benchmark& b : all_benchmarks()) {
        std::vector<std::string> row{b.framework, b.name};
        for (Method m : methods) {
            int reached = results[b.name][m].count_reached(b.reference_cost);
            row.push_back(std::to_string(reached));
            fw_counts[b.framework][m] += reached;
        }
        t5.add_row(row);
    }
    for (const char* fw : {"TACO", "RISE", "HPVM2FPGA"}) {
        std::vector<std::string> row{fw, "(total)"};
        for (Method m : methods)
            row.push_back(std::to_string(fw_counts[fw][m]));
        t5.add_row(row);
    }
    t5.print(std::cout);

    return 0;
}
