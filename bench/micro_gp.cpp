// Google-benchmark microbenchmarks of the GP substrate: fitting and
// prediction cost as a function of the training-set size (the dominant
// per-iteration cost inside BaCO's loop, cf. Appendix B).

#include <benchmark/benchmark.h>

#include "gp/gp_model.hpp"

namespace {

using namespace baco;

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, true);
    s.add_ordinal("unroll", {1, 2, 4, 8, 16}, true);
    s.add_categorical("sched", {"static", "dynamic"});
    s.add_permutation("perm", 5);
    return s;
}

void
make_data(const SearchSpace& s, int n, std::vector<Configuration>* xs,
          std::vector<double>* ys)
{
    RngEngine rng(42);
    for (int i = 0; i < n; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        ys->push_back(1.0 + rng.uniform());
        xs->push_back(std::move(c));
    }
}

void
BM_GpFit(benchmark::State& state)
{
    SearchSpace s = make_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    make_data(s, static_cast<int>(state.range(0)), &xs, &ys);
    RngEngine rng(7);
    for (auto _ : state) {
        GpModel gp(s);
        gp.fit(xs, ys, rng);
        benchmark::DoNotOptimize(gp.hyperparams());
    }
}
BENCHMARK(BM_GpFit)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

void
BM_GpPredict(benchmark::State& state)
{
    SearchSpace s = make_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    make_data(s, static_cast<int>(state.range(0)), &xs, &ys);
    RngEngine rng(7);
    GpModel gp(s);
    gp.fit(xs, ys, rng);
    Configuration probe = s.sample_unconstrained(rng);
    for (auto _ : state) {
        GpPrediction p = gp.predict(probe);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_GpPredict)->Arg(20)->Arg(80)->Unit(benchmark::kMicrosecond);

void
BM_LogMarginalLikelihood(benchmark::State& state)
{
    SearchSpace s = make_space();
    std::vector<Configuration> xs;
    std::vector<double> ys;
    make_data(s, 60, &xs, &ys);
    RngEngine rng(7);
    GpModel gp(s);
    gp.fit(xs, ys, rng);
    GpHyperparams hp = gp.hyperparams();
    for (auto _ : state) {
        double v = gp.objective(hp);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LogMarginalLikelihood)->Unit(benchmark::kMicrosecond);

}  // namespace
