// Microbenchmarks of the GP substrate: fitting, prediction, and the
// incremental append path as a function of the training-set size (the
// dominant per-iteration cost inside BaCO's loop, cf. Appendix B).
//
// The headline row is incremental-vs-scratch: growing an existing
// posterior by one observation via GpModel::extend (O(n^2) border
// append) against rebuilding it with fit_with_hyperparams (distance
// tensor + full refactorization) — the exact pair of code paths the
// tuner chooses between on every tell. The gated quantity is their
// dimensionless runtime ratio, so a regression in the append path
// fails scripts/bench_diff.py even across machines.
//
// Usage: micro_gp [--reps N] [--seed S] [--json [PATH]]
//
// --json writes BENCH_micro_gp.json (or PATH) in the same shape as the
// other harnesses: a "rows" array whose gated rows bench_diff.py
// compares against bench/baselines/.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "harness_util.hpp"
#include "gp/gp_model.hpp"
#include "suite/report.hpp"

using namespace baco;
using baco::bench::HarnessArgs;
using baco::bench::JsonWriter;
using baco::suite::TextTable;
using baco::suite::fmt;
using baco::suite::print_banner;

namespace {

SearchSpace
make_space()
{
    SearchSpace s;
    s.add_ordinal("tile", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, true);
    s.add_ordinal("unroll", {1, 2, 4, 8, 16}, true);
    s.add_categorical("sched", {"static", "dynamic"});
    s.add_permutation("perm", 5);
    return s;
}

void
make_data(const SearchSpace& s, int n, std::vector<Configuration>* xs,
          std::vector<double>* ys, std::uint64_t seed)
{
    RngEngine rng(seed);
    for (int i = 0; i < n; ++i) {
        Configuration c = s.sample_unconstrained(rng);
        ys->push_back(1.0 + rng.uniform());
        xs->push_back(std::move(c));
    }
}

/** Median wall-clock (ms) of `reps` runs of `body`. */
template <typename Fn>
double
median_ms(int reps, Fn&& body)
{
    using Clock = std::chrono::steady_clock;
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        body();
        samples.push_back(std::chrono::duration<double, std::milli>(
                              Clock::now() - t0)
                              .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/5,
                                          "BENCH_micro_gp.json");
    SearchSpace space = make_space();
    print_banner(std::cout, "GP substrate micro-costs (" +
                                std::to_string(args.reps) + " reps, median)");

    TextTable table({"Row", "n", "time [ms]"});
    std::vector<std::string> json_rows;

    // Full fit (hyperparameter optimization included) across sizes.
    for (int n : {20, 40, 80}) {
        std::vector<Configuration> xs;
        std::vector<double> ys;
        make_data(space, n, &xs, &ys, args.seed);
        double ms = median_ms(args.reps, [&] {
            RngEngine rng(7);
            GpModel gp(space);
            gp.fit(xs, ys, rng);
        });
        table.add_row({"fit", std::to_string(n), fmt(ms, 3)});
        JsonWriter row;
        row.field("key", "fit/n" + std::to_string(n))
            .field("gated", false)
            .field("n", n)
            .field("ms", ms);
        json_rows.push_back(row.str());
    }

    // Posterior prediction.
    for (int n : {20, 80}) {
        std::vector<Configuration> xs;
        std::vector<double> ys;
        make_data(space, n, &xs, &ys, args.seed);
        RngEngine rng(7);
        GpModel gp(space);
        gp.fit(xs, ys, rng);
        Configuration probe = space.sample_unconstrained(rng);
        double ms = median_ms(args.reps, [&] {
            for (int i = 0; i < 100; ++i) {
                GpPrediction p = gp.predict(probe);
                (void)p;
            }
        });
        table.add_row({"predict x100", std::to_string(n), fmt(ms, 3)});
        JsonWriter row;
        row.field("key", "predict/n" + std::to_string(n))
            .field("gated", false)
            .field("n", n)
            .field("ms", ms);
        json_rows.push_back(row.str());
    }

    // Incremental append vs scratch refresh: grow a fitted model by 32
    // observations one at a time. Both arms hold hyperparameters fixed
    // — the comparison isolates the factor update itself.
    const int kBase = 64;
    const int kGrow = 32;
    std::vector<Configuration> xs;
    std::vector<double> ys;
    make_data(space, kBase + kGrow, &xs, &ys, args.seed);
    std::vector<Configuration> base_x(xs.begin(), xs.begin() + kBase);
    std::vector<double> base_y(ys.begin(), ys.begin() + kBase);
    RngEngine rng(7);
    GpModel seed_model(space);
    seed_model.fit(base_x, base_y, rng);
    GpHyperparams hp = seed_model.hyperparams();

    double extend_ms = median_ms(args.reps, [&] {
        GpModel gp(space);
        gp.fit_with_hyperparams(base_x, base_y, hp);
        for (int i = kBase; i < kBase + kGrow; ++i)
            gp.extend(xs[static_cast<std::size_t>(i)],
                      ys[static_cast<std::size_t>(i)]);
    });
    double warm_ms = median_ms(args.reps, [&] {
        GpModel gp(space);
        gp.fit_with_hyperparams(base_x, base_y, hp);
    });
    extend_ms = std::max(extend_ms - warm_ms, 1e-6);
    double scratch_ms = median_ms(args.reps, [&] {
        GpModel gp(space);
        for (int i = kBase; i < kBase + kGrow; ++i) {
            std::vector<Configuration> px(xs.begin(), xs.begin() + i + 1);
            std::vector<double> py(ys.begin(), ys.begin() + i + 1);
            gp.fit_with_hyperparams(px, py, hp);
        }
    });
    double speedup = scratch_ms / std::max(extend_ms, 1e-6);
    table.add_row({"extend x" + std::to_string(kGrow),
                   std::to_string(kBase), fmt(extend_ms, 3)});
    table.add_row({"scratch x" + std::to_string(kGrow),
                   std::to_string(kBase), fmt(scratch_ms, 3)});
    table.print(std::cout);
    std::cout << "incremental speedup (scratch/extend, " << kGrow
              << " appends from n=" << kBase << "): " << fmt(speedup, 2)
              << "x\n";

    JsonWriter gated;
    gated.field("key", std::string("incremental/extend"))
        .field("gated", true)
        .field("gate_metric", std::string("extend_speedup"))
        .field("gate_direction", std::string("higher_better"))
        .field("tolerance", 0.35)
        .field("extend_ms", extend_ms)
        .field("scratch_ms", scratch_ms)
        .field("extend_speedup", speedup);
    json_rows.push_back(gated.str());

    if (!args.json_path.empty()) {
        JsonWriter json;
        json.field("bench", std::string("micro_gp"))
            .field("reps", args.reps)
            .field("extend_speedup", speedup)
            .raw_field("rows", JsonWriter::array(json_rows));
        if (!baco::bench::write_json(args.json_path, json)) {
            std::cout << "cannot write " << args.json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << args.json_path << "\n";
    }
    return 0;
}
