// Regenerates the Sec. 5.3 Chain-of-Trees measurements: how much faster
// feasible-region sampling and membership checking are with the CoT than
// operating on the original constrained domain (paper: 80x sampling, 6x
// constraint evaluation in local search, 70% total internal-time saving on
// the MM_GPU space).

#include <chrono>
#include <iostream>

#include "core/chain_of_trees.hpp"
#include "rise/benchmarks.hpp"
#include "suite/report.hpp"

using namespace baco;
using namespace baco::suite;
using Clock = std::chrono::steady_clock;

namespace {

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int
main()
{
    print_banner(std::cout,
                 "Chain-of-Trees speedups on the MM_GPU space (Sec. 5.3)");

    Benchmark b = rise::make_rise_benchmark("MM_GPU");
    auto space = b.make_space(SpaceVariant{});
    ChainOfTrees cot = ChainOfTrees::build(*space);

    const int n_samples = 20000;
    RngEngine rng(1);

    // ---- Feasible sampling: CoT draw vs rejection sampling. ----
    auto t0 = Clock::now();
    for (int i = 0; i < n_samples; ++i)
        (void)cot.sample(rng, true);
    double cot_sampling = seconds(t0);

    t0 = Clock::now();
    for (int i = 0; i < n_samples; ++i)
        (void)space->sample_feasible(rng, 100000);
    double rejection_sampling = seconds(t0);

    // ---- Membership checks: CoT walk vs evaluating the constraints. ----
    std::vector<Configuration> probes;
    for (int i = 0; i < n_samples; ++i)
        probes.push_back(i % 2 == 0 ? cot.sample(rng, true)
                                    : space->sample_unconstrained(rng));

    t0 = Clock::now();
    std::size_t member = 0;
    for (const Configuration& c : probes)
        member += cot.contains(c) ? 1 : 0;
    double cot_check = seconds(t0);

    t0 = Clock::now();
    std::size_t satisfied = 0;
    for (const Configuration& c : probes)
        satisfied += space->satisfies(c) ? 1 : 0;
    double constraint_check = seconds(t0);

    if (member != satisfied)
        std::cout << "WARNING: membership mismatch!\n";

    TextTable table({"Operation", "via CoT [s]", "direct [s]", "speedup"});
    table.add_row({"feasible sampling x" + std::to_string(n_samples),
                   fmt(cot_sampling, 4), fmt(rejection_sampling, 4),
                   fmt_factor(rejection_sampling / cot_sampling, 1)});
    table.add_row({"feasibility check x" + std::to_string(n_samples),
                   fmt(cot_check, 4), fmt(constraint_check, 4),
                   fmt_factor(constraint_check / cot_check, 1)});
    table.print(std::cout);

    double feasible = cot.num_feasible();
    double dense = space->dense_size();
    std::cout << "\nMM_GPU space: dense " << dense << ", feasible "
              << feasible << " (" << fmt(100.0 * feasible / dense, 2)
              << "% of dense). Paper reports 80x sampling and 6x local-"
                 "search constraint-evaluation speedups on its (sparser) "
                 "MM_GPU space.\n";
    return 0;
}
