// Google-benchmark microbenchmarks of the Chain-of-Trees: construction,
// both sampling modes, and membership checks on the MM_GPU space.

#include <benchmark/benchmark.h>

#include "core/chain_of_trees.hpp"
#include "rise/benchmarks.hpp"

namespace {

using namespace baco;

std::shared_ptr<SearchSpace>
mm_gpu_space()
{
    static std::shared_ptr<SearchSpace> space =
        rise::make_rise_benchmark("MM_GPU").make_space(SpaceVariant{});
    return space;
}

void
BM_CotBuild(benchmark::State& state)
{
    auto space = mm_gpu_space();
    for (auto _ : state) {
        ChainOfTrees cot = ChainOfTrees::build(*space);
        benchmark::DoNotOptimize(cot.num_feasible());
    }
}
BENCHMARK(BM_CotBuild)->Unit(benchmark::kMillisecond);

void
BM_CotSampleUniformLeaves(benchmark::State& state)
{
    auto space = mm_gpu_space();
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(1);
    for (auto _ : state) {
        Configuration c = cot.sample(rng, true);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CotSampleUniformLeaves)->Unit(benchmark::kMicrosecond);

void
BM_CotSampleBiasedWalk(benchmark::State& state)
{
    auto space = mm_gpu_space();
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(1);
    for (auto _ : state) {
        Configuration c = cot.sample(rng, false);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CotSampleBiasedWalk)->Unit(benchmark::kMicrosecond);

void
BM_RejectionSample(benchmark::State& state)
{
    auto space = mm_gpu_space();
    RngEngine rng(1);
    for (auto _ : state) {
        auto c = space->sample_feasible(rng, 100000);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_RejectionSample)->Unit(benchmark::kMicrosecond);

// The Asum space is far sparser (~1% feasible): the CoT-vs-rejection gap
// widens accordingly.
void
BM_CotSampleSparseAsum(benchmark::State& state)
{
    static std::shared_ptr<SearchSpace> space =
        rise::make_rise_benchmark("Asum_GPU").make_space(SpaceVariant{});
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(1);
    for (auto _ : state) {
        Configuration c = cot.sample(rng, true);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CotSampleSparseAsum)->Unit(benchmark::kMicrosecond);

void
BM_RejectionSampleSparseAsum(benchmark::State& state)
{
    static std::shared_ptr<SearchSpace> space =
        rise::make_rise_benchmark("Asum_GPU").make_space(SpaceVariant{});
    RngEngine rng(1);
    for (auto _ : state) {
        auto c = space->sample_feasible(rng, 1000000);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_RejectionSampleSparseAsum)->Unit(benchmark::kMicrosecond);

void
BM_CotContains(benchmark::State& state)
{
    auto space = mm_gpu_space();
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(1);
    Configuration c = cot.sample(rng, true);
    for (auto _ : state) {
        bool member = cot.contains(c);
        benchmark::DoNotOptimize(member);
    }
}
BENCHMARK(BM_CotContains)->Unit(benchmark::kNanosecond);

void
BM_ConstraintSatisfies(benchmark::State& state)
{
    auto space = mm_gpu_space();
    ChainOfTrees cot = ChainOfTrees::build(*space);
    RngEngine rng(1);
    Configuration c = cot.sample(rng, true);
    for (auto _ : state) {
        bool ok = space->satisfies(c);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_ConstraintSatisfies)->Unit(benchmark::kNanosecond);

}  // namespace
