// Extension experiment (paper Sec. 6 / related work on expert priors):
// BaCO's acquisition multiplied by a user prior over the optimum.
// Compares no prior vs a good prior (peaked near the expert configuration)
// vs a misleading prior, on two representative benchmarks.
//
// This regenerates no paper figure — it evaluates the future-work extension
// the paper sketches ("a simple adaptation of the BaCO acquisition function
// can benefit the same user priors when available").
//
// Usage: prior_extension [--reps N] [--seed S]

#include <cmath>
#include <iostream>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

namespace {

/** Gaussian-bump prior around a center configuration, over the encoded
 *  feature space. */
std::function<double(const Configuration&)>
make_prior(std::shared_ptr<SearchSpace> space, Configuration center,
           double width)
{
    std::vector<double> c = space->encode(center);
    return [space, c, width](const Configuration& x) {
        std::vector<double> e = space->encode(x);
        double d2 = 0.0;
        for (std::size_t i = 0; i < e.size(); ++i)
            d2 += (e[i] - c[i]) * (e[i] - c[i]);
        return std::exp(-d2 / (2.0 * width * width));
    };
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const char* names[] = {"SpMM/scircuit", "MM_GPU"};

    print_banner(std::cout,
                 "Extension: user priors for the optimum (mean perf. "
                 "relative to expert at the tiny budget)");

    TextTable table({"Benchmark", "no prior", "good prior",
                     "misleading prior"});
    for (const char* name : names) {
        const Benchmark& b = find_benchmark(name);
        auto space = b.make_space(SpaceVariant{});
        int budget = b.tiny_budget();

        // Good prior: centered on the expert; misleading: on the default.
        auto good = make_prior(space, *b.expert, 0.4);
        auto bad = make_prior(space, *b.default_config, 0.2);

        std::vector<std::string> row{b.name};
        for (auto* prior : {(decltype(&good))nullptr, &good, &bad}) {
            std::vector<double> rels;
            for (int r = 0; r < args.reps; ++r) {
                TunerOptions opt = TunerOptions::baco_defaults();
                opt.budget = budget;
                opt.doe_samples = std::min(b.doe_samples, budget);
                opt.seed = args.seed + static_cast<std::uint64_t>(r);
                if (prior)
                    opt.user_prior = *prior;
                TuningHistory h = run_baco_custom(b, opt, SpaceVariant{});
                rels.push_back(std::isfinite(h.best_value)
                                   ? b.reference_cost / h.best_value
                                   : 0.0);
            }
            row.push_back(fmt(mean(rels), 2) + "x");
        }
        table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: the good prior matches or improves the "
                 "tiny-budget result; the misleading prior costs some "
                 "early performance but cannot derail the search (its "
                 "influence decays as 1/#observations).\n";
    return 0;
}
