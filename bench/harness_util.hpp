#ifndef BACO_BENCH_HARNESS_UTIL_HPP_
#define BACO_BENCH_HARNESS_UTIL_HPP_

/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: minimal
 * command-line parsing (--reps N, --seed S, --json [PATH]),
 * geometric-mean helpers, and a tiny JSON emitter for the
 * machine-readable bench-trajectory artifacts CI tracks across PRs.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/stats.hpp"

namespace baco::bench {

/** Common harness options. */
struct HarnessArgs {
  int reps;
  std::uint64_t seed = 12345;
  /** Non-empty: write the harness's JSON summary here. */
  std::string json_path;

  /**
   * default_json names the artifact `--json` (without an explicit
   * path) writes — e.g. "BENCH_async_utilization.json"; harnesses
   * that pass nullptr require an explicit path.
   */
  static HarnessArgs
  parse(int argc, char** argv, int default_reps,
        const char* default_json = nullptr)
  {
      HarnessArgs args;
      args.reps = default_reps;
      for (int i = 1; i < argc; ++i) {
          if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
              args.reps = std::atoi(argv[++i]);
          } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
              args.seed = std::strtoull(argv[++i], nullptr, 10);
          } else if (std::strcmp(argv[i], "--json") == 0) {
              if (i + 1 < argc && argv[i + 1][0] != '-')
                  args.json_path = argv[++i];
              else if (default_json)
                  args.json_path = default_json;
          }
      }
      return args;
  }
};

/**
 * Minimal JSON object/array emitter for flat bench summaries (numbers,
 * booleans, plain ASCII strings — keys and values are emitted verbatim
 * apart from quote/backslash escaping). Not a general serializer; just
 * enough for BENCH_*.json artifacts.
 */
class JsonWriter {
 public:
  JsonWriter& field(const std::string& key, double v)
  {
      std::ostringstream os;
      os.precision(10);
      os << v;
      return raw_field(key, os.str());
  }
  JsonWriter& field(const std::string& key, int v)
  {
      return raw_field(key, std::to_string(v));
  }
  JsonWriter& field(const std::string& key, std::uint64_t v)
  {
      return raw_field(key, std::to_string(v));
  }
  JsonWriter& field(const std::string& key, bool v)
  {
      return raw_field(key, v ? "true" : "false");
  }
  JsonWriter& field(const std::string& key, const std::string& v)
  {
      return raw_field(key, quote(v));
  }
  /** value is already-serialized JSON (an object or array). */
  JsonWriter& raw_field(const std::string& key, const std::string& value)
  {
      if (!body_.empty())
          body_ += ", ";
      body_ += quote(key) + ": " + value;
      return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

  static std::string
  array(const std::vector<std::string>& elements)
  {
      std::string out = "[";
      for (std::size_t i = 0; i < elements.size(); ++i) {
          if (i)
              out += ", ";
          out += elements[i];
      }
      return out + "]";
  }

  static std::string
  quote(const std::string& s)
  {
      std::string out = "\"";
      for (char c : s) {
          if (c == '"' || c == '\\')
              out += '\\';
          out += c;
      }
      return out + "\"";
  }

 private:
  std::string body_;
};

/** Write the summary (with a trailing newline); false on I/O failure. */
inline bool
write_json(const std::string& path, const JsonWriter& json)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << json.str() << "\n";
    return static_cast<bool>(out);
}

/** Geometric mean that tolerates zeros by flooring at a tiny epsilon. */
inline double
safe_geomean(std::vector<double> v)
{
    for (double& x : v)
        x = std::max(x, 1e-6);
    return geometric_mean(v);
}

}  // namespace baco::bench

#endif  // BACO_BENCH_HARNESS_UTIL_HPP_
