#ifndef BACO_BENCH_HARNESS_UTIL_HPP_
#define BACO_BENCH_HARNESS_UTIL_HPP_

/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: minimal
 * command-line parsing (--reps N, --seed S) and geometric-mean helpers.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "linalg/stats.hpp"

namespace baco::bench {

/** Common harness options. */
struct HarnessArgs {
  int reps;
  std::uint64_t seed = 12345;

  static HarnessArgs
  parse(int argc, char** argv, int default_reps)
  {
      HarnessArgs args;
      args.reps = default_reps;
      for (int i = 1; i < argc; ++i) {
          if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
              args.reps = std::atoi(argv[++i]);
          } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
              args.seed = std::strtoull(argv[++i], nullptr, 10);
          }
      }
      return args;
  }
};

/** Geometric mean that tolerates zeros by flooring at a tiny epsilon. */
inline double
safe_geomean(std::vector<double> v)
{
    for (double& x : v)
        x = std::max(x, 1e-6);
    return geometric_mean(v);
}

}  // namespace baco::bench

#endif  // BACO_BENCH_HARNESS_UTIL_HPP_
