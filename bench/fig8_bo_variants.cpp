// Regenerates Fig. 8: comparison between BO implementations on TACO SpMM
// (filter3D, email-Enron, amazon0312) — BaCO, BaCO--, Ytopt's plain GP, and
// BaCO with a random-forest surrogate. Geometric mean of performance
// relative to expert after 20/40/60 evaluations.
//
// Usage: fig8_bo_variants [--reps N] [--seed S]

#include <iostream>

#include "harness_util.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"
#include "taco/benchmarks.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;
using baco::bench::safe_geomean;

namespace {

/** Best-so-far trajectories over repetitions of a custom runner. */
std::vector<std::vector<double>>
run_reps(const std::function<TuningHistory(std::uint64_t)>& run, int reps,
         std::uint64_t seed0)
{
    std::vector<std::vector<double>> out;
    for (int r = 0; r < reps; ++r)
        out.push_back(run(seed0 + static_cast<std::uint64_t>(r))
                          .best_trajectory());
    return out;
}

double
rel_at(const std::vector<std::vector<double>>& trajs, double ref, int at)
{
    std::vector<double> rels;
    for (const auto& t : trajs) {
        std::size_t i = std::min<std::size_t>(
            t.size() - 1, static_cast<std::size_t>(at - 1));
        rels.push_back(std::isfinite(t[i]) ? ref / t[i] : 0.0);
    }
    return mean(rels);
}

}  // namespace

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const int budget = 60;
    const char* matrices[] = {"filter3D", "email-Enron", "amazon0312"};

    print_banner(std::cout,
                 "Fig. 8: BO implementations on TACO SpMM (geomean of "
                 "perf. relative to expert over filter3D, email-Enron, "
                 "amazon0312)");

    struct Variant {
      const char* name;
      std::function<TuningHistory(const Benchmark&, std::uint64_t)> run;
    };

    SpaceVariant plain;  // BaCO's space: log transforms + Spearman
    SpaceVariant degraded;  // BaCO--'s space: no transforms, naive perms
    degraded.log_transforms = false;
    degraded.permutation_metric = PermutationMetric::kNaive;

    std::vector<Variant> variants;
    variants.push_back({"BaCO", [&](const Benchmark& b, std::uint64_t s) {
        return run_method(b, Method::kBaco, budget, s, plain);
    }});
    variants.push_back({"BaCO--", [&](const Benchmark& b, std::uint64_t s) {
        TunerOptions opt = TunerOptions::baco_minus_minus();
        opt.budget = budget;
        opt.doe_samples = b.doe_samples;
        opt.seed = s;
        return run_baco_custom(b, opt, degraded);
    }});
    variants.push_back({"Ytopt (GP)", [&](const Benchmark& b, std::uint64_t s) {
        return run_method(b, Method::kYtoptGp, budget, s, degraded);
    }});
    variants.push_back({"RFs", [&](const Benchmark& b, std::uint64_t s) {
        TunerOptions opt = TunerOptions::baco_defaults();
        opt.surrogate = TunerOptions::Surrogate::kRandomForest;
        opt.budget = budget;
        opt.doe_samples = b.doe_samples;
        opt.seed = s;
        return run_baco_custom(b, opt, plain);
    }});

    TextTable table({"Variant", "20 evals", "40 evals", "60 evals"});
    for (const Variant& v : variants) {
        std::vector<double> at20, at40, at60;
        for (const char* matrix : matrices) {
            Benchmark b =
                taco::make_taco_benchmark(taco::TacoKernel::kSpMM, matrix);
            auto trajs = run_reps(
                [&](std::uint64_t s) { return v.run(b, s); }, args.reps,
                args.seed);
            at20.push_back(rel_at(trajs, b.reference_cost, 20));
            at40.push_back(rel_at(trajs, b.reference_cost, 40));
            at60.push_back(rel_at(trajs, b.reference_cost, 60));
        }
        table.add_row({v.name, fmt(safe_geomean(at20), 2) + "x",
                       fmt(safe_geomean(at40), 2) + "x",
                       fmt(safe_geomean(at60), 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: BaCO > BaCO-- > Ytopt(GP); RFs below the "
                 "well-implemented GP, especially at small budgets.\n";
    return 0;
}
