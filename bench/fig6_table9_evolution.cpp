// Regenerates Fig. 6 (evolution of average best runtime for one kernel per
// framework) and Table 9 (how much faster BaCO reaches the baselines' final
// performance, across all benchmarks).
//
// Usage: fig6_table9_evolution [--reps N] [--seed S]

#include <iostream>
#include <map>

#include "harness_util.hpp"
#include "suite/registry.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

using namespace baco;
using namespace baco::suite;
using baco::bench::HarnessArgs;

int
main(int argc, char** argv)
{
    HarnessArgs args = HarnessArgs::parse(argc, argv, /*default_reps=*/3);
    const std::vector<Method>& methods = headline_methods();

    // ---- Fig. 6: one representative kernel per framework. ----
    const char* representatives[] = {"SpMM/scircuit", "MM_GPU", "Audio"};
    for (const char* name : representatives) {
        const Benchmark& b = find_benchmark(name);
        print_banner(std::cout, std::string("Fig. 6: evolution of average "
                                            "best runtime [ms] - ") +
                                    b.framework + " " + b.name);
        std::map<Method, std::vector<double>> curves;
        for (Method m : methods) {
            curves[m] = run_repetitions(b, m, b.full_budget, args.reps,
                                        args.seed)
                            .mean_trajectory();
        }
        std::vector<std::string> headers{"evals"};
        for (Method m : methods)
            headers.push_back(method_name(m));
        headers.push_back("Expert");
        headers.push_back("Default");
        TextTable table(headers);
        for (int e = 5; e <= b.full_budget; e += 5) {
            std::vector<std::string> row{std::to_string(e)};
            for (Method m : methods) {
                const auto& c = curves[m];
                std::size_t at = std::min<std::size_t>(
                    c.size() - 1, static_cast<std::size_t>(e - 1));
                row.push_back(fmt(c[at], 3));
            }
            row.push_back(fmt(b.reference_cost, 3));
            row.push_back(b.default_config
                              ? fmt(b.true_cost(*b.default_config), 3)
                              : "-");
            table.add_row(row);
        }
        table.print(std::cout);
    }

    // ---- Table 9: evaluations-to-reach factors. ----
    print_banner(std::cout,
                 "Table 9: factor by which BaCO needs fewer evaluations to "
                 "reach each baseline's final performance ('-' = BaCO never "
                 "reaches it)");
    std::vector<Method> baselines{Method::kAtfOpenTuner, Method::kYtopt,
                                  Method::kUniform, Method::kCotSampling};
    std::vector<std::string> headers{"Framework", "Benchmark"};
    for (Method m : baselines)
        headers.push_back(method_name(m));
    TextTable table(headers);

    std::map<std::string, std::map<Method, std::vector<double>>> fw_factors;
    std::map<Method, std::vector<double>> all_factors;

    for (const Benchmark& b : all_benchmarks()) {
        std::vector<double> baco_curve =
            run_repetitions(b, Method::kBaco, b.full_budget, args.reps,
                            args.seed)
                .mean_trajectory();
        std::vector<std::string> row{b.framework, b.name};
        for (Method m : baselines) {
            std::vector<double> other =
                run_repetitions(b, m, b.full_budget, args.reps, args.seed)
                    .mean_trajectory();
            double final_best = other.back();
            int e_other = evals_to_reach(other, final_best);
            int e_baco = evals_to_reach(baco_curve, final_best);
            if (e_baco < 0 || e_other < 0) {
                row.push_back("-");
            } else {
                double factor = static_cast<double>(e_other) / e_baco;
                row.push_back(fmt_factor(factor, 2));
                fw_factors[b.framework][m].push_back(factor);
                all_factors[m].push_back(factor);
            }
        }
        table.add_row(row);
    }
    for (const char* fw : {"TACO", "RISE", "HPVM2FPGA"}) {
        std::vector<std::string> row{fw, "(mean)"};
        for (Method m : baselines)
            row.push_back(fw_factors[fw][m].empty()
                              ? "-"
                              : fmt_factor(mean(fw_factors[fw][m]), 2));
        table.add_row(row);
    }
    std::vector<std::string> row{"All", "(mean)"};
    for (Method m : baselines)
        row.push_back(all_factors[m].empty()
                          ? "-"
                          : fmt_factor(mean(all_factors[m]), 2));
    table.add_row(row);
    table.print(std::cout);

    return 0;
}
