// Google-benchmark microbenchmarks of the random forest (feasibility model
// and Ytopt-surrogate workloads: small-N fits, many predictions).

#include <benchmark/benchmark.h>

#include "rf/random_forest.hpp"

namespace {

using namespace baco;

void
make_data(int n, int f, std::vector<std::vector<double>>* x,
          std::vector<double>* y, bool classify)
{
    RngEngine rng(3);
    for (int i = 0; i < n; ++i) {
        std::vector<double> row;
        for (int j = 0; j < f; ++j)
            row.push_back(rng.uniform());
        double target = row[0] + 0.5 * row[1 % static_cast<std::size_t>(f)];
        y->push_back(classify ? (target > 0.7 ? 1.0 : 0.0) : target);
        x->push_back(std::move(row));
    }
}

void
BM_ForestFitRegression(benchmark::State& state)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    make_data(static_cast<int>(state.range(0)), 12, &x, &y, false);
    RngEngine rng(4);
    for (auto _ : state) {
        RandomForest rf;
        rf.fit(x, y, rng);
        benchmark::DoNotOptimize(rf.num_trees());
    }
}
BENCHMARK(BM_ForestFitRegression)->Arg(40)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void
BM_ForestFitClassifier(benchmark::State& state)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    make_data(static_cast<int>(state.range(0)), 12, &x, &y, true);
    RngEngine rng(4);
    ForestOptions opt;
    opt.task = TreeTask::kClassification;
    for (auto _ : state) {
        RandomForest rf(opt);
        rf.fit(x, y, rng);
        benchmark::DoNotOptimize(rf.num_trees());
    }
}
BENCHMARK(BM_ForestFitClassifier)->Arg(40)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void
BM_ForestPredict(benchmark::State& state)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    make_data(120, 12, &x, &y, false);
    RngEngine rng(4);
    RandomForest rf;
    rf.fit(x, y, rng);
    std::vector<double> probe = x[7];
    for (auto _ : state) {
        ForestPrediction p = rf.predict_with_variance(probe);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_ForestPredict)->Unit(benchmark::kMicrosecond);

}  // namespace
